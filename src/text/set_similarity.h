#ifndef EMX_TEXT_SET_SIMILARITY_H_
#define EMX_TEXT_SET_SIMILARITY_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/text/token_interner.h"

namespace emx {

// Token-set similarity measures (§7 of the paper uses overlap size,
// overlap coefficient, and Jaccard). Inputs are token vectors as produced by
// a Tokenizer with unique() set; duplicate tokens in the input are treated
// as a set (deduplicated internally).
//
// Each measure has two forms:
//  - the legacy string form over std::vector<std::string>, which builds
//    hash sets per call (kept for standalone use and as the equivalence
//    oracle in tests);
//  - an id-span form over sorted IdSpans from one shared TokenInterner,
//    which intersects by linear merge with ZERO allocation per call. Both
//    forms reduce to the same (|A|, |B|, |A ∩ B|) integer triple, so their
//    double results are bit-identical.

// |A ∩ B|.
size_t OverlapSize(const std::vector<std::string>& a,
                   const std::vector<std::string>& b);

// |A ∩ B| / |A ∪ B|; two empty sets score 1.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

// |A ∩ B| / min(|A|, |B|); two empty sets score 1, one empty scores 0.
double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

// 2|A ∩ B| / (|A| + |B|).
double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

// |A ∩ B| / sqrt(|A|·|B|) (set cosine).
double CosineSimilarity(const std::vector<std::string>& a,
                        const std::vector<std::string>& b);

// Id-span forms. Spans MUST be sorted ascending and use ids from the same
// interner on both sides; duplicates (possible only when a tokenizer had
// unique() unset) are deduplicated on the fly during the merge, matching
// the string forms' set semantics exactly.
size_t OverlapSize(IdSpan a, IdSpan b);
double JaccardSimilarity(IdSpan a, IdSpan b);
double OverlapCoefficient(IdSpan a, IdSpan b);
double DiceSimilarity(IdSpan a, IdSpan b);
double CosineSimilarity(IdSpan a, IdSpan b);

// Monge-Elkan: mean over tokens of A of the best Jaro-Winkler score against
// any token of B. Asymmetric; MongeElkanSimilarity symmetrizes by averaging
// both directions.
double MongeElkanAsymmetric(const std::vector<std::string>& a,
                            const std::vector<std::string>& b);
double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b);

// Span forms over contiguous token-string arrays (PreparedColumn keeps the
// deduplicated tokens of a row contiguous in first-occurrence order, which
// preserves the legacy summation order — floating-point results are
// bit-identical to the vector forms).
double MongeElkanAsymmetric(const std::string* a, size_t na,
                            const std::string* b, size_t nb);
double MongeElkanSimilarity(const std::string* a, size_t na,
                            const std::string* b, size_t nb);

// As the span form, but with the tokens' interner ids (`aid[i]` is the id
// of `a[i]`) so the inner token-level Jaro-Winkler calls are memoized per
// (interner_uid, left id, right id) in a thread-local table. A memo hit
// returns the exact double the miss computed from the same two strings, and
// the summation order is untouched, so results stay bit-identical to the
// unmemoized forms — this only removes the re-scoring of the same token
// pair across the thousands of candidate pairs that share records.
// `interner_uid` must be TokenInterner::uid() of the interner that assigned
// BOTH sides' ids (PreparedColumn::interner_uid()).
double MongeElkanSimilarityMemo(const std::string* a, const uint32_t* aid,
                                size_t na, const std::string* b,
                                const uint32_t* bid, size_t nb,
                                uint64_t interner_uid);

// Hard cap on entries in each thread's Jaro-Winkler memo. When a lookup
// finds the table above the cap it is flushed before inserting — a
// pathological vocabulary (e.g. every row a unique long token) costs
// re-scoring, never unbounded memory.
inline constexpr size_t kMongeElkanMemoMaxEntries = size_t{1} << 20;

// Flushes every thread's Jaro-Winkler memo (lazily: each thread drops its
// table on its next MongeElkanSimilarityMemo call). PrepCache::Clear() calls
// this so memo entries never outlive the prepared columns whose interner
// assigned their ids. Safe to call concurrently with scoring — in-flight
// calls finish against whichever generation they started with, and scores
// are identical either way.
void ClearMongeElkanMemo();

// The memo's current generation counter (bumped by every
// ClearMongeElkanMemo). Observability hook: MatchService's tests use it to
// prove which code paths flush the memo — a batch PipelineRunner::Run in
// the same process bumps it (its per-run PrepCache::Clear), while service
// lookups never do.
uint64_t MongeElkanMemoGeneration();

// TF-IDF weighted cosine over a fixed corpus vocabulary. Build once from all
// strings of both tables, then score token vectors. Unknown tokens get
// idf = log(N + 1) (treated as if they occur in no document).
class TfIdfScorer {
 public:
  TfIdfScorer() = default;

  // `documents` is the token list of each corpus string.
  explicit TfIdfScorer(const std::vector<std::vector<std::string>>& documents);

  double Similarity(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) const;

  size_t corpus_size() const { return num_documents_; }

 private:
  double Idf(const std::string& token) const;

  std::unordered_map<std::string, size_t> document_frequency_;
  size_t num_documents_ = 0;
};

}  // namespace emx

#endif  // EMX_TEXT_SET_SIMILARITY_H_
