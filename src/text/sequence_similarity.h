#ifndef EMX_TEXT_SEQUENCE_SIMILARITY_H_
#define EMX_TEXT_SEQUENCE_SIMILARITY_H_

#include <string_view>

namespace emx {

// Character-sequence similarity measures. All Similarity() variants return a
// score in [0, 1] where 1 means identical; raw distances/scores are exposed
// separately where the unnormalized value is meaningful.
//
// Every measure here is kernel-backed: Levenshtein runs Myers' bit-parallel
// algorithm and the DP measures borrow their rows/flags from the calling
// thread's DpScratch (src/text/sequence_kernel.h), so none of them allocate
// once the scratch has warmed up. Results are BIT-IDENTICAL to the scalar
// implementations, which are retained in namespace `oracle` below as the
// equivalence reference for tests and benches.

// Unit-cost edit distance (insert / delete / substitute).
int LevenshteinDistance(std::string_view a, std::string_view b);

// 1 - distance / max(|a|, |b|); two empty strings score 1.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

// Jaro similarity (match window floor(max/2)-1, transposition-aware).
double JaroSimilarity(std::string_view a, std::string_view b);

// Jaro-Winkler with prefix scale `p` (standard 0.1, prefix capped at 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double p = 0.1);

// Global alignment score, match=+1, mismatch/gap=-0.5 by default.
double NeedlemanWunschScore(std::string_view a, std::string_view b,
                            double match = 1.0, double mismatch = -0.5,
                            double gap = -0.5);

// NW score normalized to [0,1] by max(|a|,|b|) (clamped at 0).
double NeedlemanWunschSimilarity(std::string_view a, std::string_view b);

// Local alignment score (Smith-Waterman), match=+1, mismatch/gap=-0.5.
double SmithWatermanScore(std::string_view a, std::string_view b,
                          double match = 1.0, double mismatch = -0.5,
                          double gap = -0.5);

// SW score normalized by min(|a|,|b|) (clamped to [0,1]).
double SmithWatermanSimilarity(std::string_view a, std::string_view b);

// Fraction of equal positions; strings of different length score by the
// shorter length over the longer (positional prefix agreement).
double HammingSimilarity(std::string_view a, std::string_view b);

// 1.0 if equal else 0.0.
double ExactMatch(std::string_view a, std::string_view b);

// The pre-kernel scalar implementations, byte for byte the seed versions
// (heap-allocated DP rows, std::vector<bool> match flags). They are the
// equivalence ORACLE: tests/sequence_kernel_test.cc asserts the kernel paths
// above reproduce these bit-exactly on a randomized corpus, and
// bench_similarity reports before/after against them. Not for hot paths.
namespace oracle {

int LevenshteinDistance(std::string_view a, std::string_view b);
double LevenshteinSimilarity(std::string_view a, std::string_view b);
double JaroSimilarity(std::string_view a, std::string_view b);
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double p = 0.1);
double NeedlemanWunschScore(std::string_view a, std::string_view b,
                            double match = 1.0, double mismatch = -0.5,
                            double gap = -0.5);
double NeedlemanWunschSimilarity(std::string_view a, std::string_view b);
double SmithWatermanScore(std::string_view a, std::string_view b,
                          double match = 1.0, double mismatch = -0.5,
                          double gap = -0.5);
double SmithWatermanSimilarity(std::string_view a, std::string_view b);

}  // namespace oracle

}  // namespace emx

#endif  // EMX_TEXT_SEQUENCE_SIMILARITY_H_
