#include "src/text/phonetic.h"

#include <algorithm>
#include <cctype>
#include <vector>

#include "src/text/sequence_kernel.h"

namespace emx {

namespace {

// Soundex digit classes; 0 means "not coded" (vowels, h, w, y).
char SoundexDigit(char c) {
  switch (c) {
    case 'b':
    case 'f':
    case 'p':
    case 'v':
      return '1';
    case 'c':
    case 'g':
    case 'j':
    case 'k':
    case 'q':
    case 's':
    case 'x':
    case 'z':
      return '2';
    case 'd':
    case 't':
      return '3';
    case 'l':
      return '4';
    case 'm':
    case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';
  }
}

bool IsVowelish(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u' || c == 'y';
}

}  // namespace

std::string Soundex(std::string_view s) {
  // Collect alphabetic characters, lowercased.
  std::string letters;
  for (char c : s) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      letters += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  if (letters.empty()) return "";

  std::string code;
  code += static_cast<char>(
      std::toupper(static_cast<unsigned char>(letters[0])));
  char prev_digit = SoundexDigit(letters[0]);
  for (size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    char c = letters[i];
    char d = SoundexDigit(c);
    if (d != '0' && d != prev_digit) {
      code += d;
    }
    // 'h' and 'w' are transparent: the previous digit persists across them;
    // vowels reset the adjacency rule.
    if (IsVowelish(c)) {
      prev_digit = '0';
    } else if (c != 'h' && c != 'w') {
      prev_digit = d;
    }
  }
  while (code.size() < 4) code += '0';
  return code;
}

double SoundexSimilarity(std::string_view a, std::string_view b) {
  std::string ca = Soundex(a), cb = Soundex(b);
  if (ca.empty() || cb.empty()) return 0.0;
  return ca == cb ? 1.0 : 0.0;
}

double AffineGapSimilarity(std::string_view a, std::string_view b,
                           double match, double mismatch, double gap_open,
                           double gap_extend) {
  const size_t m = a.size(), n = b.size();
  if (m == 0 || n == 0) return (m == n) ? 1.0 : 0.0;
  constexpr double kNegInf = -1e18;
  // Gotoh's three-state DP: M = match/mismatch, X = gap in b (consuming a),
  // Y = gap in a (consuming b). Row i depends only on row i-1, so six
  // rolling rows from the thread's scratch replace the three full tables;
  // every cell evaluates the exact expressions of the full-table oracle.
  const size_t w = n + 1;
  double* mp = DpScratch::Tls().Doubles(6 * w);
  double* xp = mp + w;
  double* yp = xp + w;
  double* mc = yp + w;
  double* xc = mc + w;
  double* yc = xc + w;
  mp[0] = 0.0;
  xp[0] = yp[0] = kNegInf;
  for (size_t j = 1; j <= n; ++j) {
    mp[j] = xp[j] = kNegInf;
    yp[j] = gap_open + gap_extend * static_cast<double>(j - 1);
  }
  for (size_t i = 1; i <= m; ++i) {
    const char ai = a[i - 1];
    // The current row's j-1 cells ride in registers rather than being
    // re-loaded from mc/xc/yc: the three statements stay coupled through the
    // scalars, which keeps GCC's -O3 loop-distribution pass from splitting
    // the loop (distributing it miscompiles this recurrence on GCC 12 —
    // asserted bit-exact vs the full-table oracle by AffineGapTest).
    double m_left = kNegInf;
    double x_left = gap_open + gap_extend * static_cast<double>(i - 1);
    double y_left = kNegInf;
    mc[0] = m_left;
    xc[0] = x_left;
    yc[0] = y_left;
    for (size_t j = 1; j <= n; ++j) {
      double sub = (ai == b[j - 1]) ? match : mismatch;
      double diag = std::max({mp[j - 1], xp[j - 1], yp[j - 1]});
      double mj = diag + sub;
      double xj = std::max({mp[j] + gap_open, xp[j] + gap_extend,
                            yp[j] + gap_open});
      double yj = std::max({m_left + gap_open, y_left + gap_extend,
                            x_left + gap_open});
      mc[j] = mj;
      xc[j] = xj;
      yc[j] = yj;
      m_left = mj;
      x_left = xj;
      y_left = yj;
    }
    std::swap(mp, mc);
    std::swap(xp, xc);
    std::swap(yp, yc);
  }
  double score = std::max({mp[n], xp[n], yp[n]});
  double norm = score / (match * static_cast<double>(std::min(m, n)));
  return std::clamp(norm, 0.0, 1.0);
}

namespace oracle {

double AffineGapSimilarity(std::string_view a, std::string_view b,
                           double match, double mismatch, double gap_open,
                           double gap_extend) {
  const size_t m = a.size(), n = b.size();
  if (m == 0 || n == 0) return (m == n) ? 1.0 : 0.0;
  constexpr double kNegInf = -1e18;
  // The seed full-table implementation — the equivalence oracle for the
  // rolling-row kernel above.
  std::vector<std::vector<double>> M(m + 1, std::vector<double>(n + 1, kNegInf));
  std::vector<std::vector<double>> X = M, Y = M;
  M[0][0] = 0.0;
  for (size_t i = 1; i <= m; ++i) {
    X[i][0] = gap_open + gap_extend * static_cast<double>(i - 1);
  }
  for (size_t j = 1; j <= n; ++j) {
    Y[0][j] = gap_open + gap_extend * static_cast<double>(j - 1);
  }
  for (size_t i = 1; i <= m; ++i) {
    for (size_t j = 1; j <= n; ++j) {
      double sub = (a[i - 1] == b[j - 1]) ? match : mismatch;
      double diag = std::max({M[i - 1][j - 1], X[i - 1][j - 1], Y[i - 1][j - 1]});
      M[i][j] = diag + sub;
      X[i][j] = std::max({M[i - 1][j] + gap_open, X[i - 1][j] + gap_extend,
                          Y[i - 1][j] + gap_open});
      Y[i][j] = std::max({M[i][j - 1] + gap_open, Y[i][j - 1] + gap_extend,
                          X[i][j - 1] + gap_open});
    }
  }
  double score = std::max({M[m][n], X[m][n], Y[m][n]});
  double norm = score / (match * static_cast<double>(std::min(m, n)));
  return std::clamp(norm, 0.0, 1.0);
}

}  // namespace oracle

}  // namespace emx
