#ifndef EMX_TEXT_TOKEN_INTERNER_H_
#define EMX_TEXT_TOKEN_INTERNER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace emx {

// A non-owning view over a run of token ids inside a flat arena — the unit
// the allocation-free set-similarity kernels operate on. Spans produced by
// PreparedColumn are sorted ascending; they contain duplicates only when
// the producing tokenizer had unique() unset (set kernels deduplicate on
// the fly, so either way scores match the legacy string path exactly).
struct IdSpan {
  const uint32_t* data = nullptr;
  uint32_t size = 0;

  const uint32_t* begin() const { return data; }
  const uint32_t* end() const { return data + size; }
  bool empty() const { return size == 0; }
};

// Interns token strings into dense uint32_t ids (0, 1, 2, ... in first-seen
// order). Two tokens are equal iff their ids are equal, so set-similarity
// kernels compare 4-byte ids instead of hashing strings.
//
// Every downstream consumer is invariant to the id PERMUTATION (scores
// depend only on span sizes and intersection cardinalities; the similarity
// join orders tokens by (frequency, token string), not by id), so the same
// interner may be shared by caches filled in any order without affecting
// results. Interned strings are stored in a deque: references returned by
// TokenString() stay valid across later Intern() calls.
//
// Not internally synchronized — PrepCache serializes all access under its
// own mutex.
class TokenInterner {
 public:
  TokenInterner() = default;
  TokenInterner(const TokenInterner&) = delete;
  TokenInterner& operator=(const TokenInterner&) = delete;

  // Returns the id of `token`, assigning the next dense id if unseen.
  uint32_t Intern(std::string_view token);

  // Id of `token` if already interned.
  std::optional<uint32_t> Find(std::string_view token) const;

  // The string for an id; reference stable for the interner's lifetime.
  const std::string& TokenString(uint32_t id) const { return strings_[id]; }

  // Number of distinct tokens interned so far (== smallest unassigned id).
  size_t size() const { return strings_.size(); }

  // Process-unique identity of this interner (never reused, unlike the
  // object's address). Keys caches of per-(id, id) computation results —
  // e.g. the memoized token-level Jaro-Winkler inside Monge-Elkan — so a
  // stale entry can never be confused with an id pair from a different
  // interner that happened to reuse freed memory.
  uint64_t uid() const { return uid_; }

 private:
  static uint64_t NextUid();

  const uint64_t uid_ = NextUid();
  std::deque<std::string> strings_;  // id -> token; deque keeps refs stable
  std::unordered_map<std::string_view, uint32_t> ids_;  // views into strings_
};

}  // namespace emx

#endif  // EMX_TEXT_TOKEN_INTERNER_H_
