#include "src/text/batch_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "src/text/phonetic.h"
#include "src/text/sequence_kernel.h"
#include "src/text/sequence_similarity.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define EMX_X86 1
#endif

namespace emx {

namespace {

// --- runtime SIMD dispatch --------------------------------------------------

SimdLevel CpuLevel() {
#ifdef EMX_X86
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
#endif
  return SimdLevel::kScalar;
}

// EMX_SIMD clamp, read once: lets a deployment (or a CI job) pin the tier
// without recompiling.
SimdLevel EnvClamp() {
  static const SimdLevel clamp = [] {
    const char* env = std::getenv("EMX_SIMD");
    if (env == nullptr) return SimdLevel::kAvx2;
    if (std::strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
    if (std::strcmp(env, "sse2") == 0) return SimdLevel::kSse2;
    return SimdLevel::kAvx2;
  }();
  return clamp;
}

// ForceSimdLevel override; -1 = none. Relaxed is enough: the test hook is
// documented as flip-between-batches only.
std::atomic<int> g_forced{-1};

// --- Jaro window scan -------------------------------------------------------
//
// The hot inner loop of Jaro: find the FIRST j in [lo, hi) with
// b_match[j] == 0 && b[j] == c. The SIMD variants evaluate 32 (AVX2) or 16
// (SSE2) candidate positions per step — compare-equal against the broadcast
// character, AND with "still unmatched", movemask, ctz — and return exactly
// the index the scalar left-to-right scan returns, so match/transposition
// counts (and thus the final double) are bit-identical at every tier.

using WindowScanFn = long (*)(const char* b, const uint8_t* b_match, size_t lo,
                              size_t hi, size_t lb, char c);

long WindowScanScalar(const char* b, const uint8_t* b_match, size_t lo,
                      size_t hi, size_t /*lb*/, char c) {
  for (size_t j = lo; j < hi; ++j) {
    if (!b_match[j] && b[j] == c) return static_cast<long>(j);
  }
  return -1;
}

#ifdef EMX_X86

long WindowScanSse2(const char* b, const uint8_t* b_match, size_t lo,
                    size_t hi, size_t lb, char c) {
  size_t j = lo;
  const __m128i target = _mm_set1_epi8(c);
  const __m128i zero = _mm_setzero_si128();
  // Full 16-byte loads only while they stay inside b / b_match (both are lb
  // bytes long); bits at or past `hi` are masked off before the scan.
  while (j < hi && j + 16 <= lb) {
    __m128i bv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i mv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b_match + j));
    __m128i hit = _mm_and_si128(_mm_cmpeq_epi8(bv, target),
                                _mm_cmpeq_epi8(mv, zero));
    uint32_t mask = static_cast<uint32_t>(_mm_movemask_epi8(hit));
    const size_t span = hi - j;
    if (span < 16) mask &= (1u << span) - 1;
    if (mask) return static_cast<long>(j + __builtin_ctz(mask));
    if (span <= 16) return -1;
    j += 16;
  }
  for (; j < hi; ++j) {
    if (!b_match[j] && b[j] == c) return static_cast<long>(j);
  }
  return -1;
}

__attribute__((target("avx2"))) long WindowScanAvx2(const char* b,
                                                    const uint8_t* b_match,
                                                    size_t lo, size_t hi,
                                                    size_t lb, char c) {
  size_t j = lo;
  const __m256i target = _mm256_set1_epi8(c);
  const __m256i zero = _mm256_setzero_si256();
  while (j < hi && j + 32 <= lb) {
    __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i mv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b_match + j));
    __m256i hit = _mm256_and_si256(_mm256_cmpeq_epi8(bv, target),
                                   _mm256_cmpeq_epi8(mv, zero));
    uint32_t mask = static_cast<uint32_t>(_mm256_movemask_epi8(hit));
    const size_t span = hi - j;
    if (span < 32) mask &= (span == 0) ? 0u : (0xFFFFFFFFu >> (32 - span));
    if (mask) return static_cast<long>(j + __builtin_ctz(mask));
    if (span <= 32) return -1;
    j += 32;
  }
  for (; j < hi; ++j) {
    if (!b_match[j] && b[j] == c) return static_cast<long>(j);
  }
  return -1;
}

#endif  // EMX_X86

WindowScanFn SelectWindowScan() {
  switch (ActiveSimdLevel()) {
#ifdef EMX_X86
    case SimdLevel::kAvx2:
      return WindowScanAvx2;
    case SimdLevel::kSse2:
      return WindowScanSse2;
#endif
    default:
      return WindowScanScalar;
  }
}

// One Jaro score through a pluggable window scan. Identical structure to
// JaroSimilarity (sequence_similarity.cc); only the inner candidate scan is
// swapped, and every scan variant returns the same first-eligible index.
double JaroOnePair(std::string_view a, std::string_view b, DpScratch* scratch,
                   WindowScanFn scan) {
  const size_t la = a.size(), lb = b.size();
  if (la == 0 && lb == 0) return 1.0;
  if (la == 0 || lb == 0) return 0.0;
  const int window = std::max(0, static_cast<int>(std::max(la, lb)) / 2 - 1);
  uint8_t* a_match = scratch->Bytes(la + lb);
  uint8_t* b_match = a_match + la;
  std::memset(a_match, 0, la + lb);
  int matches = 0;
  for (size_t i = 0; i < la; ++i) {
    size_t lo = (static_cast<int>(i) > window) ? i - window : 0;
    size_t hi = std::min(lb, i + window + 1);
    long j = scan(b.data(), b_match, lo, hi, lb, a[i]);
    if (j >= 0) {
      a_match[i] = 1;
      b_match[j] = 1;
      ++matches;
    }
  }
  if (matches == 0) return 0.0;
  int transpositions = 0;
  size_t k = 0;
  for (size_t i = 0; i < la; ++i) {
    if (!a_match[i]) continue;
    while (!b_match[k]) ++k;
    if (a[i] != b[k]) ++transpositions;
    ++k;
  }
  double m = matches;
  return (m / la + m / lb + (m - transpositions / 2.0) / m) / 3.0;
}

// --- length-sorted scheduling for the O(mn) DP measures ---------------------
//
// Lanes are processed longest-first: the thread's grow-only scratch reaches
// its high-water mark on the first lane instead of creeping up, and lanes of
// similar length run back to back over warm row buffers. The out[] slot of
// each lane is fixed by its input position, so the schedule is invisible in
// the results.

const uint32_t* LengthSortedOrder(const std::string_view* a,
                                  const std::string_view* b, size_t n) {
  thread_local std::vector<uint32_t> order;
  order.resize(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
    size_t lx = std::max(a[x].size(), b[x].size());
    size_t ly = std::max(a[y].size(), b[y].size());
    if (lx != ly) return lx > ly;
    return x < y;
  });
  return order.data();
}

// --- interleaved NW / SW: 4 pairs per AVX2 vector ---------------------------
//
// The global-alignment recurrences are serial along a row (cell j needs cell
// j-1 through an add+max chain), so vectorizing WITHIN one pair buys little.
// Instead, four pairs ride in the four double lanes of each row vector:
// lane l of row word j holds DP cell [i][j] of pair l. The serial chain cost
// is amortized 4 ways, and because every lane executes exactly the scalar
// per-cell operations (same adds, same two-operand maxes, on the same finite
// values — no NaNs, and the only -0.0 the DP produces is consumed by an
// addition, never compared by max against +0.0), each lane's result is
// bit-identical to the scalar kernel and the oracle.
//
// Lanes have unequal lengths; the group is padded to (mmax, nmax). Padding is
// benign by construction: DP dependencies only flow right/down, so cells
// beyond a lane's true region never feed back into it. NW snapshots lane l's
// score from row M[l] the moment that row completes; SW masks out-of-region
// cells to +0.0 before folding them into the running best (all true SW cells
// are >= 0, so a masked zero can never win).

#ifdef EMX_X86

constexpr double kNwMatch = 1.0;
constexpr double kNwMismatch = -0.5;
constexpr double kNwGap = -0.5;

__attribute__((target("avx2"))) void NwBatch4Avx2(const std::string_view* a,
                                                  const std::string_view* b,
                                                  const uint32_t* idx,
                                                  double* out,
                                                  DpScratch* scratch) {
  std::string_view A[4], B[4];
  size_t M[4], N[4], mmax = 0, nmax = 0;
  for (int l = 0; l < 4; ++l) {
    std::string_view x = a[idx[l]], y = b[idx[l]];
    if (x.size() > y.size()) std::swap(x, y);
    A[l] = x;
    B[l] = y;
    M[l] = x.size();
    N[l] = y.size();
    // Empty-outer lanes never reach a snapshot row; score them through the
    // scalar kernel BEFORE borrowing scratch lanes (it takes Doubles too).
    if (M[l] == 0) out[idx[l]] = NeedlemanWunschSimilarity(x, y);
    mmax = std::max(mmax, M[l]);
    nmax = std::max(nmax, N[l]);
  }
  if (mmax == 0) return;
  double* prev = scratch->Doubles(8 * (nmax + 1));
  double* cur = prev + 4 * (nmax + 1);
  uint8_t* bc = scratch->Bytes(4 * nmax);
  for (size_t j = 0; j < nmax; ++j) {
    for (int l = 0; l < 4; ++l) {
      bc[4 * j + l] = (j < N[l]) ? static_cast<uint8_t>(B[l][j]) : 0;
    }
  }
  for (size_t j = 0; j <= nmax; ++j) {
    double v = kNwGap * static_cast<double>(j);
    for (int l = 0; l < 4; ++l) prev[4 * j + l] = v;
  }
  const __m256d matchv = _mm256_set1_pd(kNwMatch);
  const __m256d mismatchv = _mm256_set1_pd(kNwMismatch);
  const __m256d gapv = _mm256_set1_pd(kNwGap);
  for (size_t i = 1; i <= mmax; ++i) {
    uint32_t ac4 = 0;
    for (int l = 0; l < 4; ++l) {
      // 0xFF never equals a padded-b 0 byte, so dead lanes always mismatch.
      uint8_t c = (i <= M[l]) ? static_cast<uint8_t>(A[l][i - 1]) : 0xFF;
      ac4 |= static_cast<uint32_t>(c) << (8 * l);
    }
    const __m128i acx = _mm_cvtsi32_si128(static_cast<int>(ac4));
    __m256d leftv = _mm256_set1_pd(kNwGap * static_cast<double>(i));
    _mm256_storeu_pd(cur, leftv);
    for (size_t j = 1; j <= nmax; ++j) {
      uint32_t bc4;
      std::memcpy(&bc4, bc + 4 * (j - 1), 4);
      __m128i diff =
          _mm_xor_si128(acx, _mm_cvtsi32_si128(static_cast<int>(bc4)));
      __m256i d64 = _mm256_cvtepu8_epi64(diff);
      __m256d eq = _mm256_castsi256_pd(
          _mm256_cmpeq_epi64(d64, _mm256_setzero_si256()));
      __m256d sub = _mm256_blendv_pd(mismatchv, matchv, eq);
      __m256d diag = _mm256_add_pd(_mm256_loadu_pd(prev + 4 * (j - 1)), sub);
      __m256d up = _mm256_add_pd(_mm256_loadu_pd(prev + 4 * j), gapv);
      __m256d cand = _mm256_max_pd(up, diag);
      leftv = _mm256_max_pd(_mm256_add_pd(leftv, gapv), cand);
      _mm256_storeu_pd(cur + 4 * j, leftv);
    }
    std::swap(prev, cur);
    for (int l = 0; l < 4; ++l) {
      if (M[l] == i) {
        double score = prev[4 * N[l] + l];
        double mx = static_cast<double>(std::max(M[l], N[l]));
        out[idx[l]] = std::clamp(score / mx, 0.0, 1.0);
      }
    }
  }
}

__attribute__((target("avx2"))) void SwBatch4Avx2(const std::string_view* a,
                                                  const std::string_view* b,
                                                  const uint32_t* idx,
                                                  double* out,
                                                  DpScratch* scratch) {
  std::string_view A[4], B[4];
  size_t M[4], N[4], mmax = 0, nmax = 0;
  bool live[4];
  for (int l = 0; l < 4; ++l) {
    std::string_view x = a[idx[l]], y = b[idx[l]];
    if (x.size() > y.size()) std::swap(x, y);
    A[l] = x;
    B[l] = y;
    M[l] = x.size();
    N[l] = y.size();
    live[l] = (M[l] > 0);
    if (!live[l]) out[idx[l]] = SmithWatermanSimilarity(x, y);
    mmax = std::max(mmax, M[l]);
    nmax = std::max(nmax, N[l]);
  }
  if (mmax == 0) return;
  double* prev = scratch->Doubles(12 * (nmax + 1));
  double* cur = prev + 4 * (nmax + 1);
  double* jmask = cur + 4 * (nmax + 1);  // all-ones where j <= N[l]
  uint8_t* bc = scratch->Bytes(4 * nmax);
  const uint64_t kOnes = ~0ull;
  for (size_t j = 0; j <= nmax; ++j) {
    for (int l = 0; l < 4; ++l) {
      uint64_t m0 = (j >= 1 && j <= N[l]) ? kOnes : 0;
      std::memcpy(&jmask[4 * j + l], &m0, 8);
    }
  }
  for (size_t j = 0; j < nmax; ++j) {
    for (int l = 0; l < 4; ++l) {
      bc[4 * j + l] = (j < N[l]) ? static_cast<uint8_t>(B[l][j]) : 0;
    }
  }
  for (size_t j = 0; j <= nmax; ++j) {
    for (int l = 0; l < 4; ++l) prev[4 * j + l] = 0.0;
  }
  const __m256d matchv = _mm256_set1_pd(kNwMatch);
  const __m256d mismatchv = _mm256_set1_pd(kNwMismatch);
  const __m256d gapv = _mm256_set1_pd(kNwGap);
  const __m256d zerov = _mm256_setzero_pd();
  __m256d bestv = zerov;
  for (size_t i = 1; i <= mmax; ++i) {
    uint32_t ac4 = 0;
    alignas(32) uint64_t act[4];
    for (int l = 0; l < 4; ++l) {
      uint8_t c = (i <= M[l]) ? static_cast<uint8_t>(A[l][i - 1]) : 0xFF;
      ac4 |= static_cast<uint32_t>(c) << (8 * l);
      act[l] = (i <= M[l]) ? kOnes : 0;
    }
    const __m128i acx = _mm_cvtsi32_si128(static_cast<int>(ac4));
    const __m256d activev =
        _mm256_loadu_pd(reinterpret_cast<const double*>(act));
    __m256d leftv = zerov;
    _mm256_storeu_pd(cur, zerov);
    for (size_t j = 1; j <= nmax; ++j) {
      uint32_t bc4;
      std::memcpy(&bc4, bc + 4 * (j - 1), 4);
      __m128i diff =
          _mm_xor_si128(acx, _mm_cvtsi32_si128(static_cast<int>(bc4)));
      __m256i d64 = _mm256_cvtepu8_epi64(diff);
      __m256d eq = _mm256_castsi256_pd(
          _mm256_cmpeq_epi64(d64, _mm256_setzero_si256()));
      __m256d sub = _mm256_blendv_pd(mismatchv, matchv, eq);
      __m256d diag = _mm256_add_pd(_mm256_loadu_pd(prev + 4 * (j - 1)), sub);
      __m256d up = _mm256_add_pd(_mm256_loadu_pd(prev + 4 * j), gapv);
      __m256d cand = _mm256_max_pd(_mm256_max_pd(zerov, diag), up);
      leftv = _mm256_max_pd(_mm256_add_pd(leftv, gapv), cand);
      _mm256_storeu_pd(cur + 4 * j, leftv);
      __m256d inbounds =
          _mm256_and_pd(_mm256_loadu_pd(jmask + 4 * j), activev);
      bestv = _mm256_max_pd(bestv, _mm256_and_pd(leftv, inbounds));
    }
    std::swap(prev, cur);
  }
  alignas(32) double best4[4];
  _mm256_storeu_pd(best4, bestv);
  for (int l = 0; l < 4; ++l) {
    if (!live[l]) continue;
    double mn = static_cast<double>(std::min(M[l], N[l]));
    out[idx[l]] = std::clamp(best4[l] / mn, 0.0, 1.0);
  }
}

#endif  // EMX_X86

}  // namespace

SimdLevel DetectedSimdLevel() {
  static const SimdLevel level = CpuLevel();
  return level;
}

SimdLevel ActiveSimdLevel() {
  SimdLevel level = std::min(DetectedSimdLevel(), EnvClamp());
  int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) level = std::min(level, static_cast<SimdLevel>(forced));
  return level;
}

void ForceSimdLevel(SimdLevel level) {
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ResetSimdLevel() { g_forced.store(-1, std::memory_order_relaxed); }

void ExactMatchBatch(const std::string_view* a, const std::string_view* b,
                     size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) out[i] = (a[i] == b[i]) ? 1.0 : 0.0;
}

void LevenshteinSimilarityBatch(const std::string_view* a,
                                const std::string_view* b, size_t n,
                                double* out) {
  DpScratch& scratch = DpScratch::Tls();
  for (size_t i = 0; i < n; ++i) {
    size_t mx = std::max(a[i].size(), b[i].size());
    if (mx == 0) {
      out[i] = 1.0;
      continue;
    }
    out[i] = 1.0 - static_cast<double>(MyersLevenshtein(a[i], b[i], &scratch)) /
                       static_cast<double>(mx);
  }
}

void JaroSimilarityBatch(const std::string_view* a, const std::string_view* b,
                         size_t n, double* out) {
  DpScratch& scratch = DpScratch::Tls();
  const WindowScanFn scan = SelectWindowScan();
  for (size_t i = 0; i < n; ++i) {
    out[i] = JaroOnePair(a[i], b[i], &scratch, scan);
  }
}

void JaroWinklerSimilarityBatch(const std::string_view* a,
                                const std::string_view* b, size_t n,
                                double* out, double p) {
  DpScratch& scratch = DpScratch::Tls();
  const WindowScanFn scan = SelectWindowScan();
  for (size_t i = 0; i < n; ++i) {
    double jaro = JaroOnePair(a[i], b[i], &scratch, scan);
    size_t prefix = 0;
    size_t limit = std::min({a[i].size(), b[i].size(), size_t{4}});
    while (prefix < limit && a[i][prefix] == b[i][prefix]) ++prefix;
    out[i] = jaro + static_cast<double>(prefix) * p * (1.0 - jaro);
  }
}

void NeedlemanWunschSimilarityBatch(const std::string_view* a,
                                    const std::string_view* b, size_t n,
                                    double* out) {
  const uint32_t* order = LengthSortedOrder(a, b, n);
  size_t k = 0;
#ifdef EMX_X86
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    DpScratch& scratch = DpScratch::Tls();
    // Length-sorted order puts same-sized pairs in the same 4-lane group,
    // minimizing the padding the interleaved kernel wastes work on.
    for (; k + 4 <= n; k += 4) NwBatch4Avx2(a, b, order + k, out, &scratch);
  }
#endif
  for (; k < n; ++k) {
    uint32_t i = order[k];
    out[i] = NeedlemanWunschSimilarity(a[i], b[i]);
  }
}

void SmithWatermanSimilarityBatch(const std::string_view* a,
                                  const std::string_view* b, size_t n,
                                  double* out) {
  const uint32_t* order = LengthSortedOrder(a, b, n);
  size_t k = 0;
#ifdef EMX_X86
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    DpScratch& scratch = DpScratch::Tls();
    for (; k + 4 <= n; k += 4) SwBatch4Avx2(a, b, order + k, out, &scratch);
  }
#endif
  for (; k < n; ++k) {
    uint32_t i = order[k];
    out[i] = SmithWatermanSimilarity(a[i], b[i]);
  }
}

void AffineGapSimilarityBatch(const std::string_view* a,
                              const std::string_view* b, size_t n,
                              double* out) {
  const uint32_t* order = LengthSortedOrder(a, b, n);
  for (size_t k = 0; k < n; ++k) {
    uint32_t i = order[k];
    out[i] = AffineGapSimilarity(a[i], b[i]);
  }
}

}  // namespace emx
