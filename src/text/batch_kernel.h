#ifndef EMX_TEXT_BATCH_KERNEL_H_
#define EMX_TEXT_BATCH_KERNEL_H_

#include <cstddef>
#include <string_view>

namespace emx {

// Batch (columnar) entry points for the character-sequence measures: score
// `n` contiguous string pairs per call instead of one. Lane i of `out`
// receives exactly the double the corresponding single-pair measure in
// sequence_similarity.h / phonetic.h returns for (a[i], b[i]) — BIT-exact,
// which the 10k-pair suites in tests/pair_batch_test.cc assert against the
// scalar `emx::oracle` reference at 1/2/8 threads and at every SIMD level.
//
// What batching buys over per-pair calls:
//  - one DpScratch::Tls() lookup and one dispatch per BATCH, not per pair;
//  - the Jaro/Jaro-Winkler match scan runs through an AVX2 (or SSE2)
//    window kernel selected at runtime, with the scalar loop retained as
//    the portable fallback;
//  - the O(mn) DP measures (NW / SW / affine gap) process lanes in
//    length-sorted order so the shared scratch arena grows once and the
//    row buffers stay cache-resident across lanes of similar size.
//
// Thread-safety: batch calls borrow the calling thread's DpScratch, so any
// number of executor threads can run disjoint batches concurrently.

// SIMD tier the Jaro window kernel runs at. Levels are cumulative: a CPU
// reporting kAvx2 also supports kSse2.
enum class SimdLevel {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

// The level batch kernels actually execute at: the highest level the CPU
// supports, clamped by the EMX_SIMD environment variable ("scalar", "sse2",
// "avx2"; read once) and by ForceSimdLevel.
SimdLevel ActiveSimdLevel();

// Highest level the CPU supports, ignoring overrides.
SimdLevel DetectedSimdLevel();

// Test hook: pins ActiveSimdLevel() to min(detected, level) until
// ResetSimdLevel(). Lets the equivalence suites drive the scalar fallback
// and the SSE2 path on AVX2 hosts. Not thread-safe against concurrent batch
// calls — flip it only between batches.
void ForceSimdLevel(SimdLevel level);
void ResetSimdLevel();

// out[i] = the corresponding scalar measure of (a[i], b[i]).
void ExactMatchBatch(const std::string_view* a, const std::string_view* b,
                     size_t n, double* out);
void LevenshteinSimilarityBatch(const std::string_view* a,
                                const std::string_view* b, size_t n,
                                double* out);
void JaroSimilarityBatch(const std::string_view* a, const std::string_view* b,
                         size_t n, double* out);
void JaroWinklerSimilarityBatch(const std::string_view* a,
                                const std::string_view* b, size_t n,
                                double* out, double p = 0.1);
void NeedlemanWunschSimilarityBatch(const std::string_view* a,
                                    const std::string_view* b, size_t n,
                                    double* out);
void SmithWatermanSimilarityBatch(const std::string_view* a,
                                  const std::string_view* b, size_t n,
                                  double* out);
void AffineGapSimilarityBatch(const std::string_view* a,
                              const std::string_view* b, size_t n,
                              double* out);

}  // namespace emx

#endif  // EMX_TEXT_BATCH_KERNEL_H_
