#include "src/text/numeric_similarity.h"

#include <algorithm>
#include <cmath>

namespace emx {

double AbsoluteDifference(double a, double b) { return std::abs(a - b); }

double RelativeDifference(double a, double b) {
  double mx = std::max(std::abs(a), std::abs(b));
  if (mx == 0.0) return 0.0;
  return std::abs(a - b) / mx;
}

double RelativeSimilarity(double a, double b) {
  return std::clamp(1.0 - RelativeDifference(a, b), 0.0, 1.0);
}

double NumericExactMatch(double a, double b) { return a == b ? 1.0 : 0.0; }

}  // namespace emx
