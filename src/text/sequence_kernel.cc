#include "src/text/sequence_kernel.h"

#include <algorithm>
#include <cstring>

namespace emx {

DpScratch& DpScratch::Tls() {
  thread_local DpScratch scratch;
  return scratch;
}

namespace {

// Single-word Myers/Hyyrö: pattern `pat` (1..64 chars) against `text`.
// Pv/Mv hold the vertical deltas of the DP column at the current text
// position; `score` tracks D[m][j] via the horizontal delta at row m (the
// pattern's last bit). The `| 1` in the Ph shift is the D[0][j] = j boundary
// row, which increases by one every text character.
int MyersSingleWord(std::string_view pat, std::string_view text) {
  const size_t m = pat.size();
  uint64_t peq[256];
  std::memset(peq, 0, sizeof(peq));
  for (size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(pat[i])] |= uint64_t{1} << i;
  }
  uint64_t pv = ~uint64_t{0};
  uint64_t mv = 0;
  int score = static_cast<int>(m);
  const uint64_t last = uint64_t{1} << (m - 1);
  for (char tc : text) {
    const uint64_t eq = peq[static_cast<unsigned char>(tc)];
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & last) {
      ++score;
    } else if (mh & last) {
      --score;
    }
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  return score;
}

// Blocked Myers for patterns beyond one word: the pattern's DP column is cut
// into 64-row blocks, each stepped with Hyyrö's AdvanceBlock; the horizontal
// delta at a block's top row (hout) feeds the next block as hin. hin of
// block 0 is always +1 (the boundary row), and hout of the last block —
// read at the pattern's last bit, not bit 63, when the block is partial —
// is exactly the per-column delta of D[m][j]. Bits above the pattern length
// in the last block hold garbage rows, which is harmless: word carries only
// propagate upward, so they never influence row m.
int MyersBlocked(std::string_view pat, std::string_view text,
                 DpScratch* scratch) {
  const size_t m = pat.size();
  const size_t words = (m + 63) / 64;
  uint64_t* peq = scratch->Words(words * 256 + 2 * words);
  uint64_t* pv = peq + words * 256;
  uint64_t* mv = pv + words;
  std::memset(peq, 0, words * 256 * sizeof(uint64_t));
  for (size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(pat[i]) * words + i / 64] |=
        uint64_t{1} << (i % 64);
  }
  for (size_t k = 0; k < words; ++k) {
    pv[k] = ~uint64_t{0};
    mv[k] = 0;
  }
  int score = static_cast<int>(m);
  const size_t last_block = words - 1;
  const uint64_t last_bit = uint64_t{1} << ((m - 1) % 64);
  for (char tc : text) {
    const uint64_t* eq_row =
        peq + static_cast<size_t>(static_cast<unsigned char>(tc)) * words;
    int hin = 1;
    for (size_t k = 0; k < words; ++k) {
      uint64_t eq = eq_row[k];
      const uint64_t pv_k = pv[k];
      const uint64_t mv_k = mv[k];
      const uint64_t xv = eq | mv_k;
      if (hin < 0) eq |= 1;
      const uint64_t xh = (((eq & pv_k) + pv_k) ^ pv_k) | eq;
      uint64_t ph = mv_k | ~(xh | pv_k);
      uint64_t mh = pv_k & xh;
      const uint64_t top = k == last_block ? last_bit : uint64_t{1} << 63;
      int hout = 0;
      if (ph & top) {
        hout = 1;
      } else if (mh & top) {
        hout = -1;
      }
      ph = (ph << 1) | (hin > 0 ? 1 : 0);
      mh = (mh << 1) | (hin < 0 ? 1 : 0);
      pv[k] = mh | ~(xv | ph);
      mv[k] = ph & xv;
      hin = hout;
    }
    score += hin;
  }
  return score;
}

}  // namespace

int MyersLevenshtein(std::string_view a, std::string_view b,
                     DpScratch* scratch) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the pattern: O(min) words
  if (a.empty()) return static_cast<int>(b.size());
  if (a.size() <= 64) return MyersSingleWord(a, b);
  return MyersBlocked(a, b, scratch);
}

int BoundedLevenshtein(std::string_view a, std::string_view b, int limit,
                       DpScratch* scratch) {
  if (a.size() > b.size()) std::swap(a, b);
  const int m = static_cast<int>(a.size());
  const int n = static_cast<int>(b.size());
  if (limit < 0) limit = 0;
  // Length-difference bound: every alignment needs at least n - m edits.
  if (n - m > limit) return limit + 1;
  if (m == 0) return n;  // n <= limit here, so n is the exact answer
  const int inf = limit + 1;
  int* prev = scratch->Ints(2 * (n + 1));
  int* cur = prev + (n + 1);
  for (int j = 0; j <= n; ++j) prev[j] = j <= limit ? j : inf;
  for (int i = 1; i <= m; ++i) {
    const char ai = a[i - 1];
    const int lo = std::max(1, i - limit);
    const int hi = std::min(n, i + limit);
    // Left band edge (the cell before `lo`), then the band, then an `inf`
    // guard past the right edge so the next row's out-of-band reads see it.
    cur[lo - 1] = lo == 1 ? (i <= limit ? i : inf) : inf;
    int row_min = cur[lo - 1];
    for (int j = lo; j <= hi; ++j) {
      const int sub = prev[j - 1] + (ai == b[j - 1] ? 0 : 1);
      const int del = prev[j] + 1;
      const int ins = cur[j - 1] + 1;
      const int v = std::min(inf, std::min({sub, del, ins}));
      cur[j] = v;
      row_min = std::min(row_min, v);
    }
    if (hi < n) cur[hi + 1] = inf;
    // Cells only grow down a column, so a row entirely past the limit can
    // never come back under it.
    if (row_min > limit) return inf;
    std::swap(prev, cur);
  }
  return std::min(prev[n], inf);
}

double LevenshteinSimilarityUpperBound(size_t len_a, size_t len_b) {
  const size_t mx = std::max(len_a, len_b);
  if (mx == 0) return 1.0;
  const size_t diff = len_a > len_b ? len_a - len_b : len_b - len_a;
  return 1.0 - static_cast<double>(diff) / static_cast<double>(mx);
}

bool LevenshteinSimilarityAtLeast(std::string_view a, std::string_view b,
                                  double min_sim) {
  const size_t mx = std::max(a.size(), b.size());
  if (mx == 0) return 1.0 >= min_sim;
  // The similarity LevenshteinSimilarity would compute for distance d. The
  // double is monotone nonincreasing in d (both the division and the
  // subtraction round monotonically), which the short-circuits below rely on.
  const auto sim_of = [mx](int d) {
    return 1.0 - static_cast<double>(d) / static_cast<double>(mx);
  };
  // Exact length-bound short-circuit: d >= |len difference| always.
  if (LevenshteinSimilarityUpperBound(a.size(), b.size()) < min_sim) {
    return false;
  }
  // Even the worst case passes: no DP needed.
  if (sim_of(static_cast<int>(mx)) >= min_sim) return true;
  // Largest distance that still satisfies the threshold. Start from the
  // algebraic estimate and nudge (FP rounding can shift it by one).
  int limit = static_cast<int>((1.0 - min_sim) * static_cast<double>(mx));
  limit = std::min(limit, static_cast<int>(mx));
  while (limit + 1 <= static_cast<int>(mx) && sim_of(limit + 1) >= min_sim) {
    ++limit;
  }
  while (limit >= 0 && sim_of(limit) < min_sim) --limit;
  if (limit < 0) return false;  // even distance 0 falls short
  // Band with exact cutoff: a return within the limit is the true distance,
  // so the comparison below is the one the unbounded path would make; a
  // return past it proves sim_of(d) < min_sim by monotonicity.
  return BoundedLevenshtein(a, b, limit, &DpScratch::Tls()) <= limit;
}

}  // namespace emx
