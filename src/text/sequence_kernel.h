#ifndef EMX_TEXT_SEQUENCE_KERNEL_H_
#define EMX_TEXT_SEQUENCE_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace emx {

// Reusable dynamic-programming scratch for the character-sequence kernels.
//
// Every sequence measure (Levenshtein, Jaro, Needleman-Wunsch,
// Smith-Waterman, affine gap) needs a handful of flat working buffers whose
// size depends only on the input lengths. Instead of heap-allocating them on
// every call, each kernel borrows typed lanes from one DpScratch. Buffers are
// GROW-ONLY: a request never shrinks a lane, so after the first call at the
// high-water-mark size, no sequence measure allocates at all.
//
// Lifetime rules:
//  - Kernels take their buffers fresh from lane offset 0 on every call; the
//    previous call's contents are dead the moment the next call starts. A
//    kernel must therefore finish with a lane before any other kernel runs
//    on the same scratch (no pointers may be retained across calls).
//  - Kernels never call other scratch-backed kernels while holding a lane
//    (Jaro-Winkler wraps Jaro, but takes no buffer of its own; Monge-Elkan
//    calls Jaro-Winkler between its own scratch-free bookkeeping).
//  - One scratch per thread: Tls() hands out a thread_local instance, so the
//    kernels are safe to call from any number of executor threads without
//    locking, and the arena's high-water mark is per thread.
//
// Returned buffers are UNINITIALIZED (they hold whatever the previous call
// left); each kernel writes before it reads.
class DpScratch {
 public:
  DpScratch() = default;
  DpScratch(const DpScratch&) = delete;
  DpScratch& operator=(const DpScratch&) = delete;

  uint8_t* Bytes(size_t n) { return Lane(&bytes_, n); }
  int* Ints(size_t n) { return Lane(&ints_, n); }
  double* Doubles(size_t n) { return Lane(&doubles_, n); }
  uint64_t* Words(size_t n) { return Lane(&words_, n); }

  // Number of times any lane had to (re)allocate. The allocation-counting
  // test hook: warm the scratch at the corpus' maximum lengths, snapshot
  // this, score the whole corpus again, and assert it did not move.
  size_t grow_count() const { return grow_count_; }

  // This thread's scratch (thread_local; created on first use).
  static DpScratch& Tls();

 private:
  template <typename T>
  T* Lane(std::vector<T>* lane, size_t n) {
    if (lane->size() < n) {
      ++grow_count_;
      // Geometric growth so a slowly rising high-water mark settles after
      // O(log max) grows instead of reallocating per call.
      lane->resize(n < 2 * lane->size() ? 2 * lane->size() : n);
    }
    return lane->data();
  }

  size_t grow_count_ = 0;
  std::vector<uint8_t> bytes_;
  std::vector<int> ints_;
  std::vector<double> doubles_;
  std::vector<uint64_t> words_;
};

// Myers' bit-parallel Levenshtein distance (Myers 1999, JACM; Hyyrö's
// formulation). Computes the EXACT unit-cost edit distance — bit-identical
// to the classic row DP — in O(ceil(min/64) * max) word operations: the
// shorter string becomes the pattern whose DP column lives in machine words
// (one word when the pattern is <= 64 chars, the blocked multi-word variant
// beyond). Operates on bytes; UTF-8 multi-byte sequences are compared
// bytewise exactly like the scalar oracle. Allocation-free: the blocked
// variant borrows its Peq table and vertical-delta words from `scratch`.
int MyersLevenshtein(std::string_view a, std::string_view b,
                     DpScratch* scratch);

// Banded Levenshtein with an exact cutoff (Ukkonen): returns the exact
// distance d when d <= limit, and limit + 1 when the distance provably
// exceeds `limit`. Only the diagonal band |i - j| <= limit is evaluated
// (cells outside it have distance > limit by the length-difference bound),
// and the scan stops early once a whole band row exceeds the limit. Used by
// threshold predicates that do not need the full distance.
int BoundedLevenshtein(std::string_view a, std::string_view b, int limit,
                       DpScratch* scratch);

// Exact upper bound on LevenshteinSimilarity from lengths alone:
// d >= |len_a - len_b|, so sim <= 1 - |len_a - len_b| / max. Lets callers
// with a threshold skip the DP entirely when even the bound falls short.
double LevenshteinSimilarityUpperBound(size_t len_a, size_t len_b);

// Exactly LevenshteinSimilarity(a, b) >= min_sim, but short-circuits: the
// length bound above rejects without any DP, and the banded kernel stops as
// soon as the distance provably pushes the similarity below `min_sim`. When
// the band completes, the comparison is performed on the identical double
// LevenshteinSimilarity would have produced, so the decision never differs
// from scoring first and comparing after.
bool LevenshteinSimilarityAtLeast(std::string_view a, std::string_view b,
                                  double min_sim);

}  // namespace emx

#endif  // EMX_TEXT_SEQUENCE_KERNEL_H_
