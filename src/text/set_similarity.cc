#include "src/text/set_similarity.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "src/text/sequence_similarity.h"

namespace emx {

namespace {

// Deduplicated view helper.
std::unordered_set<std::string_view> ToSet(const std::vector<std::string>& v) {
  std::unordered_set<std::string_view> s;
  s.reserve(v.size() * 2);
  for (const auto& t : v) s.insert(t);
  return s;
}

struct SetStats {
  size_t size_a;
  size_t size_b;
  size_t intersection;
};

SetStats ComputeStats(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  auto sa = ToSet(a);
  auto sb = ToSet(b);
  const auto& small = sa.size() <= sb.size() ? sa : sb;
  const auto& large = sa.size() <= sb.size() ? sb : sa;
  size_t inter = 0;
  for (const auto& t : small) {
    if (large.count(t)) ++inter;
  }
  return {sa.size(), sb.size(), inter};
}

// Id-span counterpart of ComputeStats: one linear merge over two sorted
// spans, counting distinct values and distinct common values — no hashing,
// no allocation. Runs of equal ids (non-unique tokenizers) collapse to one.
SetStats ComputeStats(IdSpan a, IdSpan b) {
  size_t i = 0, j = 0;
  size_t da = 0, db = 0, inter = 0;
  while (i < a.size && j < b.size) {
    uint32_t va = a.data[i];
    uint32_t vb = b.data[j];
    if (va == vb) {
      ++da;
      ++db;
      ++inter;
      do { ++i; } while (i < a.size && a.data[i] == va);
      do { ++j; } while (j < b.size && b.data[j] == vb);
    } else if (va < vb) {
      ++da;
      do { ++i; } while (i < a.size && a.data[i] == va);
    } else {
      ++db;
      do { ++j; } while (j < b.size && b.data[j] == vb);
    }
  }
  while (i < a.size) {
    uint32_t va = a.data[i];
    ++da;
    do { ++i; } while (i < a.size && a.data[i] == va);
  }
  while (j < b.size) {
    uint32_t vb = b.data[j];
    ++db;
    do { ++j; } while (j < b.size && b.data[j] == vb);
  }
  return {da, db, inter};
}

// Shared score formulas: both representations reduce to the same integer
// triple, so routing them through one set of formulas guarantees the
// double results are bit-identical across representations.
double JaccardFromStats(const SetStats& s) {
  size_t uni = s.size_a + s.size_b - s.intersection;
  if (uni == 0) return 1.0;
  return static_cast<double>(s.intersection) / static_cast<double>(uni);
}

double OverlapCoefficientFromStats(const SetStats& s) {
  size_t mn = std::min(s.size_a, s.size_b);
  if (mn == 0) return (s.size_a == s.size_b) ? 1.0 : 0.0;
  return static_cast<double>(s.intersection) / static_cast<double>(mn);
}

double DiceFromStats(const SetStats& s) {
  size_t denom = s.size_a + s.size_b;
  if (denom == 0) return 1.0;
  return 2.0 * static_cast<double>(s.intersection) /
         static_cast<double>(denom);
}

double CosineFromStats(const SetStats& s) {
  if (s.size_a == 0 || s.size_b == 0) {
    return (s.size_a == s.size_b) ? 1.0 : 0.0;
  }
  return static_cast<double>(s.intersection) /
         std::sqrt(static_cast<double>(s.size_a) *
                   static_cast<double>(s.size_b));
}

}  // namespace

size_t OverlapSize(const std::vector<std::string>& a,
                   const std::vector<std::string>& b) {
  return ComputeStats(a, b).intersection;
}

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  return JaccardFromStats(ComputeStats(a, b));
}

double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  return OverlapCoefficientFromStats(ComputeStats(a, b));
}

double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  return DiceFromStats(ComputeStats(a, b));
}

double CosineSimilarity(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  return CosineFromStats(ComputeStats(a, b));
}

size_t OverlapSize(IdSpan a, IdSpan b) {
  return ComputeStats(a, b).intersection;
}

double JaccardSimilarity(IdSpan a, IdSpan b) {
  return JaccardFromStats(ComputeStats(a, b));
}

double OverlapCoefficient(IdSpan a, IdSpan b) {
  return OverlapCoefficientFromStats(ComputeStats(a, b));
}

double DiceSimilarity(IdSpan a, IdSpan b) {
  return DiceFromStats(ComputeStats(a, b));
}

double CosineSimilarity(IdSpan a, IdSpan b) {
  return CosineFromStats(ComputeStats(a, b));
}

double MongeElkanAsymmetric(const std::string* a, size_t na,
                            const std::string* b, size_t nb) {
  if (na == 0) return nb == 0 ? 1.0 : 0.0;
  if (nb == 0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < na; ++i) {
    double best = 0.0;
    for (size_t j = 0; j < nb; ++j) {
      best = std::max(best, JaroWinklerSimilarity(a[i], b[j]));
    }
    sum += best;
  }
  return sum / static_cast<double>(na);
}

double MongeElkanSimilarity(const std::string* a, size_t na,
                            const std::string* b, size_t nb) {
  return 0.5 * (MongeElkanAsymmetric(a, na, b, nb) +
                MongeElkanAsymmetric(b, nb, a, na));
}

namespace {

// Thread-local token-pair Jaro-Winkler memo for MongeElkanSimilarityMemo.
// Keyed by the ids' interner uid: a lookup against a different interner
// resets the table (ids are only comparable within one interner). Bounded
// by kMongeElkanMemoMaxEntries — a pathological vocabulary flushes the
// table instead of growing forever — and generation-stamped so
// ClearMongeElkanMemo() can flush every thread's table lazily.
std::atomic<uint64_t> g_memo_generation{0};

struct JwMemo {
  uint64_t interner_uid = 0;
  uint64_t generation = 0;
  std::unordered_map<uint64_t, double> scores;  // (aid << 32 | bid) -> jw
};

double MemoizedJw(JwMemo& memo, const std::string& a, uint32_t aid,
                  const std::string& b, uint32_t bid) {
  const uint64_t key = (static_cast<uint64_t>(aid) << 32) | bid;
  auto it = memo.scores.find(key);
  if (it != memo.scores.end()) return it->second;
  double v = JaroWinklerSimilarity(a, b);
  memo.scores.emplace(key, v);
  return v;
}

double MongeElkanAsymmetricMemo(JwMemo& memo, const std::string* a,
                                const uint32_t* aid, size_t na,
                                const std::string* b, const uint32_t* bid,
                                size_t nb) {
  if (na == 0) return nb == 0 ? 1.0 : 0.0;
  if (nb == 0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < na; ++i) {
    double best = 0.0;
    for (size_t j = 0; j < nb; ++j) {
      best = std::max(best, MemoizedJw(memo, a[i], aid[i], b[j], bid[j]));
    }
    sum += best;
  }
  return sum / static_cast<double>(na);
}

}  // namespace

double MongeElkanSimilarityMemo(const std::string* a, const uint32_t* aid,
                                size_t na, const std::string* b,
                                const uint32_t* bid, size_t nb,
                                uint64_t interner_uid) {
  thread_local JwMemo memo;
  const uint64_t generation =
      g_memo_generation.load(std::memory_order_relaxed);
  if (memo.interner_uid != interner_uid || memo.generation != generation ||
      memo.scores.size() > kMongeElkanMemoMaxEntries) {
    memo.interner_uid = interner_uid;
    memo.generation = generation;
    memo.scores.clear();
  }
  // Directional keys on purpose: the reverse direction scores jw(b_j, a_i),
  // stored under (bid << 32 | aid), so no symmetry assumption about the
  // Jaro-Winkler implementation is baked into the memo.
  return 0.5 * (MongeElkanAsymmetricMemo(memo, a, aid, na, b, bid, nb) +
                MongeElkanAsymmetricMemo(memo, b, bid, nb, a, aid, na));
}

void ClearMongeElkanMemo() {
  g_memo_generation.fetch_add(1, std::memory_order_relaxed);
}

uint64_t MongeElkanMemoGeneration() {
  return g_memo_generation.load(std::memory_order_relaxed);
}

double MongeElkanAsymmetric(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  return MongeElkanAsymmetric(a.data(), a.size(), b.data(), b.size());
}

double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  return MongeElkanSimilarity(a.data(), a.size(), b.data(), b.size());
}

TfIdfScorer::TfIdfScorer(
    const std::vector<std::vector<std::string>>& documents)
    : num_documents_(documents.size()) {
  for (const auto& doc : documents) {
    std::unordered_set<std::string_view> seen;
    for (const auto& t : doc) {
      if (seen.insert(t).second) ++document_frequency_[t];
    }
  }
}

double TfIdfScorer::Idf(const std::string& token) const {
  auto it = document_frequency_.find(token);
  double df = (it == document_frequency_.end())
                  ? 0.0
                  : static_cast<double>(it->second);
  // Smoothed idf; unknown tokens (df=0) get the maximum weight.
  return std::log((static_cast<double>(num_documents_) + 1.0) / (df + 1.0));
}

double TfIdfScorer::Similarity(const std::vector<std::string>& a,
                               const std::vector<std::string>& b) const {
  std::unordered_map<std::string, double> wa, wb;
  for (const auto& t : a) wa[t] += 1.0;
  for (const auto& t : b) wb[t] += 1.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (auto& [t, tf] : wa) {
    double w = tf * Idf(t);
    wa[t] = w;
    na += w * w;
  }
  for (auto& [t, tf] : wb) {
    double w = tf * Idf(t);
    wb[t] = w;
    nb += w * w;
  }
  for (const auto& [t, w] : wa) {
    auto it = wb.find(t);
    if (it != wb.end()) dot += w * it->second;
  }
  if (na == 0.0 || nb == 0.0) return (na == nb) ? 1.0 : 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace emx
