#include "src/text/set_similarity.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/text/sequence_similarity.h"

namespace emx {

namespace {

// Deduplicated view helper.
std::unordered_set<std::string_view> ToSet(const std::vector<std::string>& v) {
  std::unordered_set<std::string_view> s;
  s.reserve(v.size() * 2);
  for (const auto& t : v) s.insert(t);
  return s;
}

struct SetStats {
  size_t size_a;
  size_t size_b;
  size_t intersection;
};

SetStats ComputeStats(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  auto sa = ToSet(a);
  auto sb = ToSet(b);
  const auto& small = sa.size() <= sb.size() ? sa : sb;
  const auto& large = sa.size() <= sb.size() ? sb : sa;
  size_t inter = 0;
  for (const auto& t : small) {
    if (large.count(t)) ++inter;
  }
  return {sa.size(), sb.size(), inter};
}

}  // namespace

size_t OverlapSize(const std::vector<std::string>& a,
                   const std::vector<std::string>& b) {
  return ComputeStats(a, b).intersection;
}

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  SetStats s = ComputeStats(a, b);
  size_t uni = s.size_a + s.size_b - s.intersection;
  if (uni == 0) return 1.0;
  return static_cast<double>(s.intersection) / static_cast<double>(uni);
}

double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  SetStats s = ComputeStats(a, b);
  size_t mn = std::min(s.size_a, s.size_b);
  if (mn == 0) return (s.size_a == s.size_b) ? 1.0 : 0.0;
  return static_cast<double>(s.intersection) / static_cast<double>(mn);
}

double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  SetStats s = ComputeStats(a, b);
  size_t denom = s.size_a + s.size_b;
  if (denom == 0) return 1.0;
  return 2.0 * static_cast<double>(s.intersection) /
         static_cast<double>(denom);
}

double CosineSimilarity(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  SetStats s = ComputeStats(a, b);
  if (s.size_a == 0 || s.size_b == 0) {
    return (s.size_a == s.size_b) ? 1.0 : 0.0;
  }
  return static_cast<double>(s.intersection) /
         std::sqrt(static_cast<double>(s.size_a) *
                   static_cast<double>(s.size_b));
}

double MongeElkanAsymmetric(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  if (a.empty()) return b.empty() ? 1.0 : 0.0;
  if (b.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& ta : a) {
    double best = 0.0;
    for (const auto& tb : b) {
      best = std::max(best, JaroWinklerSimilarity(ta, tb));
    }
    sum += best;
  }
  return sum / static_cast<double>(a.size());
}

double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  return 0.5 * (MongeElkanAsymmetric(a, b) + MongeElkanAsymmetric(b, a));
}

TfIdfScorer::TfIdfScorer(
    const std::vector<std::vector<std::string>>& documents)
    : num_documents_(documents.size()) {
  for (const auto& doc : documents) {
    std::unordered_set<std::string_view> seen;
    for (const auto& t : doc) {
      if (seen.insert(t).second) ++document_frequency_[t];
    }
  }
}

double TfIdfScorer::Idf(const std::string& token) const {
  auto it = document_frequency_.find(token);
  double df = (it == document_frequency_.end())
                  ? 0.0
                  : static_cast<double>(it->second);
  // Smoothed idf; unknown tokens (df=0) get the maximum weight.
  return std::log((static_cast<double>(num_documents_) + 1.0) / (df + 1.0));
}

double TfIdfScorer::Similarity(const std::vector<std::string>& a,
                               const std::vector<std::string>& b) const {
  std::unordered_map<std::string, double> wa, wb;
  for (const auto& t : a) wa[t] += 1.0;
  for (const auto& t : b) wb[t] += 1.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (auto& [t, tf] : wa) {
    double w = tf * Idf(t);
    wa[t] = w;
    na += w * w;
  }
  for (auto& [t, tf] : wb) {
    double w = tf * Idf(t);
    wb[t] = w;
    nb += w * w;
  }
  for (const auto& [t, w] : wa) {
    auto it = wb.find(t);
    if (it != wb.end()) dot += w * it->second;
  }
  if (na == 0.0 || nb == 0.0) return (na == nb) ? 1.0 : 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace emx
