#ifndef EMX_TEXT_PHONETIC_H_
#define EMX_TEXT_PHONETIC_H_

#include <string>
#include <string_view>

namespace emx {

// Phonetic encodings for person-name matching (the paper's M3 evidence —
// "comparing the individuals involved in the project" — must survive
// spelling drift like KERMICLE/KURMICKLE).

// American Soundex: first letter + three digits, zero-padded ("Robert" ->
// "R163"). Non-alphabetic characters are ignored; empty/uncodable input
// yields "".
std::string Soundex(std::string_view s);

// 1.0 if both encode to the same non-empty Soundex code, else 0.0.
double SoundexSimilarity(std::string_view a, std::string_view b);

// Affine-gap alignment similarity: like Needleman-Wunsch, but opening a
// gap costs more than extending one, so "Smith, J" vs "Smith, John R"
// (one long insertion) scores higher than scattered edits. Returns a
// score normalized into [0, 1] by min(|a|, |b|). Kernel-backed: Gotoh's
// three-state DP runs over six rolling rows borrowed from the calling
// thread's DpScratch instead of three full (m+1)x(n+1) tables —
// allocation-free after warm-up and bit-identical to the full-table oracle.
double AffineGapSimilarity(std::string_view a, std::string_view b,
                           double match = 1.0, double mismatch = -0.5,
                           double gap_open = -1.0, double gap_extend = -0.2);

namespace oracle {

// The seed full-table implementation, kept as the equivalence oracle for
// the scratch-backed kernel above.
double AffineGapSimilarity(std::string_view a, std::string_view b,
                           double match = 1.0, double mismatch = -0.5,
                           double gap_open = -1.0, double gap_extend = -0.2);

}  // namespace oracle

}  // namespace emx

#endif  // EMX_TEXT_PHONETIC_H_
