#ifndef EMX_TEXT_NUMERIC_SIMILARITY_H_
#define EMX_TEXT_NUMERIC_SIMILARITY_H_

namespace emx {

// Numeric comparison features (the "absolute difference, exact match"
// features of footnote 7).

// |a - b|.
double AbsoluteDifference(double a, double b);

// |a - b| / max(|a|, |b|); 0 when both are 0.
double RelativeDifference(double a, double b);

// 1 - RelativeDifference, clamped to [0,1] — a similarity in [0,1].
double RelativeSimilarity(double a, double b);

// 1.0 if equal else 0.0.
double NumericExactMatch(double a, double b);

}  // namespace emx

#endif  // EMX_TEXT_NUMERIC_SIMILARITY_H_
