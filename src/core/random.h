#ifndef EMX_CORE_RANDOM_H_
#define EMX_CORE_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace emx {

// Deterministic, platform-independent pseudo-random engine.
//
// Experiment reproducibility is a hard requirement (DESIGN.md §5), and the
// standard <random> distributions are not guaranteed to produce identical
// streams across standard library implementations. RandomEngine is
// xoshiro256** seeded via SplitMix64, with hand-rolled helpers whose output
// depends only on the seed.
class RandomEngine {
 public:
  explicit RandomEngine(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t NextUint64();

  // Uniform over [0, bound). bound must be > 0; uses rejection sampling so
  // the distribution is exactly uniform.
  uint64_t NextBelow(uint64_t bound);

  // Uniform over [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1) with 53 random bits.
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // True with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // Standard normal via Box-Muller (deterministic two-call pattern).
  double NextGaussian();

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // k distinct indices sampled uniformly without replacement from [0, n).
  // Requires k <= n. Result order is random.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  // Derives an independent engine; `stream` distinguishes substreams of the
  // same logical seed.
  RandomEngine Fork(uint64_t stream);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace emx

#endif  // EMX_CORE_RANDOM_H_
