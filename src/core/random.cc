#include "src/core/random.h"

#include <cmath>

namespace emx {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

RandomEngine::RandomEngine(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t RandomEngine::NextUint64() {
  // xoshiro256**
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t RandomEngine::NextBelow(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling: discard the biased tail of the 64-bit range.
  uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t RandomEngine::NextInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double RandomEngine::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double RandomEngine::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool RandomEngine::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double RandomEngine::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

std::vector<size_t> RandomEngine::SampleWithoutReplacement(size_t n,
                                                           size_t k) {
  // Partial Fisher-Yates over an index vector: O(n) space, O(n + k) time.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k && i < n; ++i) {
    size_t j = i + static_cast<size_t>(NextBelow(n - i));
    std::swap(idx[i], idx[j]);
    out.push_back(idx[i]);
  }
  return out;
}

RandomEngine RandomEngine::Fork(uint64_t stream) {
  uint64_t mix = NextUint64() ^ (stream * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  return RandomEngine(mix);
}

}  // namespace emx
