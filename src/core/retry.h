#ifndef EMX_CORE_RETRY_H_
#define EMX_CORE_RETRY_H_

#include <chrono>
#include <functional>
#include <string>
#include <string_view>

#include "src/core/result.h"
#include "src/core/status.h"

namespace emx {

// Retry with exponential backoff for transient failures.
//
// The retry layer is deliberately dumb about WHAT it runs and strict about
// WHEN it reruns: only codes classified retryable (transient I/O) are
// retried; deterministic failures — parse errors, missing files, bad
// arguments — pass through after a single attempt, because rerunning them
// can only waste time and mask the real diagnosis.

// True for codes worth retrying. Today: kIoError only.
bool IsRetryableCode(StatusCode code);

struct RetryPolicy {
  // Total attempts including the first; <= 1 disables retries.
  int max_attempts = 3;
  // Backoff before the 2nd attempt; doubles (times `backoff_multiplier`)
  // per subsequent attempt, capped at `max_backoff`.
  std::chrono::milliseconds initial_backoff{10};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds max_backoff{5000};
  // Injectable sleep so tests run on a fake clock; nullptr → real
  // std::this_thread::sleep_for.
  std::function<void(std::chrono::milliseconds)> sleep;
};

// Backoff preceding attempt `attempt` (2-based: attempt 1 never waits).
std::chrono::milliseconds BackoffForAttempt(const RetryPolicy& policy,
                                            int attempt);

namespace internal_retry {
// Logs a warning for the failed attempt and sleeps the policy's backoff.
void SleepBeforeAttempt(const RetryPolicy& policy, std::string_view what,
                        int next_attempt, const Status& failure);
}  // namespace internal_retry

// Runs `fn` up to policy.max_attempts times while it fails with a retryable
// code, backing off between attempts. Returns the first success or the
// final (or first non-retryable) failure. `what` names the operation in
// retry warnings, e.g. "read /data/left.csv".
Status RetryStatus(const RetryPolicy& policy, std::string_view what,
                   const std::function<Status()>& fn);

// Result-returning variant of RetryStatus.
template <typename T>
Result<T> Retry(const RetryPolicy& policy, std::string_view what,
                const std::function<Result<T>()>& fn) {
  Result<T> result = fn();
  for (int attempt = 2;
       attempt <= policy.max_attempts && !result.ok() &&
       IsRetryableCode(result.status().code());
       ++attempt) {
    internal_retry::SleepBeforeAttempt(policy, what, attempt, result.status());
    result = fn();
  }
  return result;
}

}  // namespace emx

#endif  // EMX_CORE_RETRY_H_
