#ifndef EMX_CORE_FAILPOINT_H_
#define EMX_CORE_FAILPOINT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/random.h"
#include "src/core/status.h"

namespace emx {

// Fault-injection failpoints (the MongoDB idiom): named hooks compiled into
// hot I/O and stage-boundary code that normally do nothing, but can be armed
// — programmatically, via the CLI's --fail-point flag, or the EMX_FAILPOINTS
// environment variable — to inject deterministic failures. They exist so the
// pipeline's failure behavior (retry, checkpoint/resume, graceful
// degradation) is testable instead of theoretical.
//
// Cost when disarmed: a single relaxed atomic load and a predictable branch
// per EMX_FAILPOINT site (plus a one-time registry lookup cached in a static
// at each site). No locks, no allocation, no counter updates.

// How an armed failpoint decides whether to fire.
enum class FailPointMode {
  kOff,    // armed but inert (counts hits; useful for coverage probes)
  kError,  // every hit fires until `count` is exhausted
  kProb,   // each hit fires with probability `probability` (seeded RNG)
  kBlock,  // every hit BLOCKS the calling thread until the point is
           // disarmed (then returns OK). Deterministic stall for admission
           // and overload tests: park a worker exactly at the instrumented
           // site, observe the system saturate, disarm to release. A
           // hard cap (block_timeout_ms) bounds the stall so a test that
           // forgets to disarm degrades to a slow pass, never a CI hang.
};

struct FailPointConfig {
  FailPointMode mode = FailPointMode::kOff;
  // Status code injected when the point fires. Must not be kOk.
  StatusCode code = StatusCode::kIoError;
  // kProb only: chance each hit fires, in [0, 1].
  double probability = 0.0;
  // kProb only: RNG seed, so injected failures are reproducible.
  uint64_t seed = 42;
  // Maximum number of fires before the point auto-disarms; -1 = unlimited.
  // `count=2` on an error-mode point makes exactly the first two hits fail —
  // the shape every retry test wants.
  int64_t count = -1;
  // kBlock only: upper bound on one blocked wait. The default is generous
  // enough that a test observing the stall never races it, yet a leaked
  // armed point cannot wedge CI forever.
  int64_t block_timeout_ms = 30000;
};

// One named failpoint. Stable address for the lifetime of the process (the
// registry never erases entries), so call sites may cache references.
class FailPoint {
 public:
  explicit FailPoint(std::string name) : name_(std::move(name)) {}

  FailPoint(const FailPoint&) = delete;
  FailPoint& operator=(const FailPoint&) = delete;

  const std::string& name() const { return name_; }

  // The instrumented-code entry point. OK when disarmed or the point decides
  // not to fire; otherwise the configured error Status.
  Status Check() {
    if (!armed_.load(std::memory_order_acquire)) return Status::OK();
    return Evaluate();
  }

  void Arm(const FailPointConfig& config);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  // Check() calls observed while armed.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  // Failures actually injected.
  uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }
  void ResetCounters();

 private:
  Status Evaluate();

  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> fires_{0};

  mutable std::mutex mu_;  // guards config_, remaining_, rng_
  std::condition_variable cv_;  // wakes kBlock waiters on Disarm/re-Arm
  FailPointConfig config_;
  int64_t remaining_ = -1;
  uint64_t arm_epoch_ = 0;  // bumped by every Arm/Disarm; unblocks waiters
  RandomEngine rng_{0};
};

// Process-wide name → FailPoint map. Creation is on demand: instrumented
// code registers its point the first time it runs, and tests/CLI may arm a
// name before any instrumented code touched it.
class FailPointRegistry {
 public:
  static FailPointRegistry& Global();

  FailPoint& GetOrCreate(const std::string& name);
  // nullptr when the name was never created.
  FailPoint* Find(const std::string& name) const;

  // Arms one point from a spec string:
  //   <name>:off
  //   <name>:error(<StatusCode>)[,count=<n>]
  //   <name>:prob(<p>)[,seed=<s>][,count=<n>]
  //   <name>:block[,count=<n>][,timeout_ms=<ms>]
  // e.g. "csv/read:error(IoError),count=2". InvalidArgument on bad syntax.
  Status ArmFromSpec(const std::string& spec);

  // Arms every ';'-separated spec in `specs` (the --fail-point flag and
  // EMX_FAILPOINTS env format). Empty segments are ignored.
  Status ArmFromSpecList(const std::string& specs);

  // Arms from the EMX_FAILPOINTS environment variable; no-op when unset.
  Status ArmFromEnv();

  void DisarmAll();
  std::vector<std::string> ArmedNames() const;

 private:
  FailPointRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<FailPoint>> points_;
};

// Instruments the enclosing function (which must return Status or Result<T>)
// with a named failpoint: when armed and firing, the injected Status is
// returned from the function. Disarmed cost: one atomic load + branch.
#define EMX_FAILPOINT(name)                                       \
  do {                                                            \
    static ::emx::FailPoint& _emx_fp_point =                      \
        ::emx::FailPointRegistry::Global().GetOrCreate(name);     \
    if (::emx::Status _emx_fp_status = _emx_fp_point.Check();     \
        !_emx_fp_status.ok())                                     \
      return _emx_fp_status;                                      \
  } while (false)

}  // namespace emx

#endif  // EMX_CORE_FAILPOINT_H_
