#include "src/core/executor.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <stdexcept>

#include "src/core/failpoint.h"

namespace emx {

namespace {

// True on pool workers, and on any thread currently running chunks of a
// parallel loop (including the caller); nested loops observe it and run
// inline instead of re-entering the pool.
thread_local bool tls_running_chunks = false;

}  // namespace

// One ParallelFor call. Workers and the caller claim chunk indices from
// `next_chunk`; each chunk writes only its own `errors` slot, so no lock is
// needed on the result side. `done_cv` is signalled (under `mu`, to pair
// with the caller's predicate wait) when the last chunk retires.
struct Executor::Job {
  const std::function<void(size_t, size_t)>* fn = nullptr;
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> chunks_done{0};
  std::vector<std::exception_ptr> errors;
  std::mutex mu;
  std::condition_variable done_cv;
};

Executor::Executor(size_t num_threads)
    : num_threads_(num_threads == 0 ? DefaultThreadCount() : num_threads) {
  // The calling thread is one of the N; spawn the other N-1.
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

size_t Executor::DefaultThreadCount() {
  if (const char* env = std::getenv("EMX_THREADS")) {
    long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

Executor& Executor::Default() {
  static Executor* pool = new Executor(0);  // intentionally leaked
  return *pool;
}

size_t Executor::EffectiveGrain(size_t n, size_t grain) const {
  if (grain > 0) return grain;
  // Auto grain: ~8 chunks per thread balances steal granularity against
  // per-chunk overhead. Chunking never affects results (see class comment).
  return std::max<size_t>(1, n / (8 * num_threads_));
}

bool Executor::ShouldRunSerially(size_t num_chunks) const {
  return num_threads_ <= 1 || workers_.empty() || tls_running_chunks ||
         num_chunks <= 1;
}

void Executor::ParallelFor(size_t begin, size_t end, size_t grain,
                           const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  size_t n = end - begin;
  size_t g = EffectiveGrain(n, grain);
  size_t num_chunks = (n + g - 1) / g;
  if (ShouldRunSerially(num_chunks)) {
    // Pool bypass: one inline call over the whole range, exactly the
    // pre-executor code path.
    fn(begin, end);
    return;
  }

  // Fault-injection hook on the pool-dispatch path (serial bypass above is
  // uninstrumented: there is no dispatch to fail). ParallelFor has no Status
  // channel, so an injected failure surfaces as the exception the chunked
  // error protocol already propagates deterministically.
  static FailPoint& dispatch_fp =
      FailPointRegistry::Global().GetOrCreate("executor/dispatch");
  if (Status fp_status = dispatch_fp.Check(); !fp_status.ok()) {
    throw std::runtime_error(fp_status.ToString());
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->begin = begin;
  job->end = end;
  job->grain = g;
  job->num_chunks = num_chunks;
  job->errors.resize(num_chunks);

  // One queue token per helper; extras that arrive after the chunks run
  // out exit the claim loop immediately.
  size_t helpers = std::min(workers_.size(), num_chunks - 1);
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    for (size_t i = 0; i < helpers; ++i) queue_.push(job);
  }
  if (helpers == 1) {
    queue_cv_.notify_one();
  } else if (helpers > 1) {
    queue_cv_.notify_all();
  }

  RunChunks(*job);  // the caller is a full participant

  {
    std::unique_lock<std::mutex> lk(job->mu);
    job->done_cv.wait(lk, [&] {
      return job->chunks_done.load(std::memory_order_acquire) ==
             job->num_chunks;
    });
  }
  for (std::exception_ptr& e : job->errors) {
    if (e) std::rethrow_exception(e);
  }
}

void Executor::RunChunks(Job& job) {
  bool was_running = tls_running_chunks;
  tls_running_chunks = true;
  for (;;) {
    size_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.num_chunks) break;
    size_t lo = job.begin + c * job.grain;
    size_t hi = std::min(job.end, lo + job.grain);
    try {
      (*job.fn)(lo, hi);
    } catch (...) {
      job.errors[c] = std::current_exception();
    }
    if (job.chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.num_chunks) {
      // Lock pairs the notify with the caller's predicate re-check so the
      // wakeup cannot be lost.
      std::lock_guard<std::mutex> lk(job.mu);
      job.done_cv.notify_all();
    }
  }
  tls_running_chunks = was_running;
}

void Executor::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_
      job = std::move(queue_.front());
      queue_.pop();
    }
    RunChunks(*job);
  }
}

}  // namespace emx
