#include "src/core/retry.h"

#include <algorithm>
#include <thread>

#include "src/core/logging.h"

namespace emx {

bool IsRetryableCode(StatusCode code) {
  return code == StatusCode::kIoError;
}

std::chrono::milliseconds BackoffForAttempt(const RetryPolicy& policy,
                                            int attempt) {
  if (attempt <= 2) return std::min(policy.initial_backoff, policy.max_backoff);
  double ms = static_cast<double>(policy.initial_backoff.count());
  for (int i = 2; i < attempt; ++i) ms *= policy.backoff_multiplier;
  ms = std::min(ms, static_cast<double>(policy.max_backoff.count()));
  return std::chrono::milliseconds(static_cast<int64_t>(ms));
}

namespace internal_retry {

void SleepBeforeAttempt(const RetryPolicy& policy, std::string_view what,
                        int next_attempt, const Status& failure) {
  std::chrono::milliseconds backoff = BackoffForAttempt(policy, next_attempt);
  EMX_LOG(Warning) << "retryable failure in " << what << " (attempt "
                   << (next_attempt - 1) << "/" << policy.max_attempts
                   << "): " << failure.ToString() << "; retrying in "
                   << backoff.count() << "ms";
  if (policy.sleep) {
    policy.sleep(backoff);
  } else {
    std::this_thread::sleep_for(backoff);
  }
}

}  // namespace internal_retry

Status RetryStatus(const RetryPolicy& policy, std::string_view what,
                   const std::function<Status()>& fn) {
  Status status = fn();
  for (int attempt = 2;
       attempt <= policy.max_attempts && !status.ok() &&
       IsRetryableCode(status.code());
       ++attempt) {
    internal_retry::SleepBeforeAttempt(policy, what, attempt, status);
    status = fn();
  }
  return status;
}

}  // namespace emx
