#ifndef EMX_CORE_EXECUTOR_H_
#define EMX_CORE_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace emx {

// Fixed-size worker-thread pool executing data-parallel loops with a
// DETERMINISM GUARANTEE: every primitive partitions its index range into
// contiguous chunks and merges per-chunk results in chunk order, so — as
// long as the supplied function computes each index independently — the
// output is bit-identical at any thread count, including 1.
//
// At 1 thread (or when called from inside a pool worker, see "nesting"
// below) the pool is bypassed entirely and the function runs inline on the
// calling thread over the whole range, which keeps seed (pre-executor)
// behavior unchanged.
//
// Thread-count resolution: an explicit constructor argument wins; 0 defers
// to DefaultThreadCount(), which honors the EMX_THREADS environment
// variable and falls back to std::thread::hardware_concurrency(). The
// calling thread participates in every loop, so an N-thread executor
// spawns N-1 workers.
//
// Nesting: a ParallelFor issued from inside a worker (e.g. a fold of a
// parallel cross-validation training a parallel random forest) runs
// serially on that worker instead of re-entering the pool — never
// deadlocks, never oversubscribes.
//
// Exceptions thrown by the loop body are captured per chunk and the first
// one in CHUNK ORDER is rethrown on the calling thread after every chunk
// has finished, so partial failures are deterministic too.
class Executor {
 public:
  // num_threads == 0 → DefaultThreadCount().
  explicit Executor(size_t num_threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  size_t num_threads() const { return num_threads_; }

  // Invokes fn(chunk_begin, chunk_end) over a partition of [begin, end)
  // into chunks of at most `grain` indices (grain == 0 → automatic).
  // Blocks until every chunk ran; rethrows the first chunk-order exception.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  // out[i] = fn(i) for i in [0, n). The element type must be
  // default-constructible (slots are pre-allocated, then filled in place).
  template <typename Fn>
  auto ParallelMap(size_t n, size_t grain, const Fn& fn)
      -> std::vector<std::decay_t<decltype(fn(size_t{0}))>> {
    std::vector<std::decay_t<decltype(fn(size_t{0}))>> out(n);
    ParallelFor(0, n, grain, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) out[i] = fn(i);
    });
    return out;
  }

  // Deterministic chunked merge: fn(chunk_begin, chunk_end) returns a
  // vector per chunk; chunks are concatenated in chunk order. On the
  // serial path this is exactly fn(0, n) — one call, no copy.
  template <typename Fn>
  auto ParallelFlatMap(size_t n, size_t grain, const Fn& fn)
      -> std::decay_t<decltype(fn(size_t{0}, size_t{0}))> {
    using Container = std::decay_t<decltype(fn(size_t{0}, size_t{0}))>;
    if (n == 0) return Container{};
    size_t g = EffectiveGrain(n, grain);
    size_t num_chunks = (n + g - 1) / g;
    if (ShouldRunSerially(num_chunks)) return fn(0, n);
    std::vector<Container> parts(num_chunks);
    ParallelFor(0, n, g,
                [&](size_t lo, size_t hi) { parts[lo / g] = fn(lo, hi); });
    size_t total = 0;
    for (const Container& p : parts) total += p.size();
    Container out;
    out.reserve(total);
    for (Container& p : parts) {
      out.insert(out.end(), std::make_move_iterator(p.begin()),
                 std::make_move_iterator(p.end()));
    }
    return out;
  }

  // Process-wide shared pool, built lazily with DefaultThreadCount().
  static Executor& Default();

  // EMX_THREADS if set to a positive integer, else hardware concurrency
  // (never 0).
  static size_t DefaultThreadCount();

 private:
  struct Job;

  size_t EffectiveGrain(size_t n, size_t grain) const;
  bool ShouldRunSerially(size_t num_chunks) const;
  void WorkerLoop();
  static void RunChunks(Job& job);

  size_t num_threads_;
  std::vector<std::thread> workers_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::queue<std::shared_ptr<Job>> queue_;
  bool stopping_ = false;
};

// How a pipeline stage receives its executor: stages take an
// ExecutorContext (cheap to copy, default-constructed means "use the
// shared pool") so callers can pin work to a private pool — the CLI's
// --threads flag does exactly that — without any global mutation.
struct ExecutorContext {
  Executor* executor = nullptr;  // nullptr → Executor::Default()

  Executor& get() const { return executor ? *executor : Executor::Default(); }
};

}  // namespace emx

#endif  // EMX_CORE_EXECUTOR_H_
