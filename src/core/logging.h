#ifndef EMX_CORE_LOGGING_H_
#define EMX_CORE_LOGGING_H_

#include <sstream>
#include <string>

namespace emx {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

// Stream-style log line; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define EMX_LOG(level)                                              \
  ::emx::internal_logging::LogMessage(::emx::LogLevel::k##level,    \
                                      __FILE__, __LINE__)

// Invariant check: aborts with a message when `cond` is false. Used for
// programmer errors (not data errors — those return Status).
#define EMX_CHECK(cond)                                                   \
  if (!(cond))                                                            \
  ::emx::internal_logging::FatalMessage(__FILE__, __LINE__).stream()      \
      << "Check failed: " #cond " "

namespace internal_logging {

class FatalMessage {
 public:
  FatalMessage(const char* file, int line);
  [[noreturn]] ~FatalMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace emx

#endif  // EMX_CORE_LOGGING_H_
