#include "src/core/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace emx {

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StripPunctuation(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == ' ';
    if (!keep) c = ' ';
  }
  return out;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

bool ParseByteSize(std::string_view s, size_t* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  size_t digits = 0;
  while (digits < s.size() && s[digits] >= '0' && s[digits] <= '9') ++digits;
  if (digits == 0) return false;
  uint64_t value = 0;
  for (size_t i = 0; i < digits; ++i) {
    uint64_t d = static_cast<uint64_t>(s[i] - '0');
    if (value > (UINT64_MAX - d) / 10) return false;
    value = value * 10 + d;
  }
  std::string_view suffix = s.substr(digits);
  uint64_t multiplier = 1;
  if (!suffix.empty()) {
    char unit = suffix[0];
    if (unit >= 'A' && unit <= 'Z') unit = static_cast<char>(unit - 'A' + 'a');
    switch (unit) {
      case 'k': multiplier = 1ull << 10; break;
      case 'm': multiplier = 1ull << 20; break;
      case 'g': multiplier = 1ull << 30; break;
      case 't': multiplier = 1ull << 40; break;
      case 'b':  // bare bytes suffix, "512b"
        if (suffix.size() != 1) return false;
        *out = static_cast<size_t>(value);
        return true;
      default: return false;
    }
    // Optional trailing 'b'/'B' ("64MB"); anything else is malformed.
    if (suffix.size() == 2) {
      if (suffix[1] != 'b' && suffix[1] != 'B') return false;
    } else if (suffix.size() > 2) {
      return false;
    }
  }
  if (multiplier != 1 && value > UINT64_MAX / multiplier) return false;
  *out = static_cast<size_t>(value * multiplier);
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace emx
