#ifndef EMX_CORE_FILEIO_H_
#define EMX_CORE_FILEIO_H_

#include <string>

#include "src/core/result.h"
#include "src/core/status.h"

namespace emx {

// Low-level file helpers shared by the CSV layer and the checkpoint store.
// All failures carry the path and strerror(errno) detail; a missing file is
// NotFound (deterministic, not retryable), everything else is IoError
// (transient, retryable per retry.h).

// Reads the whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

// Writes `content` to `path`, truncating any existing file.
Status WriteStringToFile(const std::string& content, const std::string& path);

// Crash-safe write: writes `path` + ".tmp" and renames it over `path`, so a
// reader never observes a half-written file — the checkpoint atomicity
// protocol (DESIGN.md §7).
Status WriteFileAtomic(const std::string& content, const std::string& path);

bool FileExists(const std::string& path);

}  // namespace emx

#endif  // EMX_CORE_FILEIO_H_
