#include "src/core/status.h"

namespace emx {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

bool StatusCodeFromString(std::string_view name, StatusCode* out) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kIoError, StatusCode::kParseError,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kNotImplemented, StatusCode::kUnavailable}) {
    if (name == StatusCodeToString(code)) {
      *out = code;
      return true;
    }
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace emx
