#ifndef EMX_CORE_RESULT_H_
#define EMX_CORE_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "src/core/logging.h"
#include "src/core/status.h"

namespace emx {

// Result<T> holds either a value of type T or a non-OK Status explaining why
// the value could not be produced (the Arrow `Result` / abseil `StatusOr`
// idiom). Accessing the value of an errored Result aborts; call ok() first
// or use EMX_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  // Intentionally implicit, so `return MakeTable(...)` and
  // `return Status::InvalidArgument(...)` both work in a
  // Result-returning function.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      // An OK status carries no value; this is a caller bug.
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      // Log the code and message before dying: a silent abort in a deep
      // pipeline is undiagnosable from a core dump alone.
      EMX_LOG(Error) << "Result::value() called on errored Result: "
                     << status_.ToString();
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;  // OK iff value_ engaged.
};

// Evaluates `expr` (a Result<T>); on error returns the Status, otherwise
// moves the value into `lhs`. Usable in functions returning Status or
// Result<U>.
#define EMX_ASSIGN_OR_RETURN(lhs, expr)               \
  EMX_ASSIGN_OR_RETURN_IMPL(                          \
      EMX_RESULT_CONCAT(_emx_result, __LINE__), lhs, expr)

#define EMX_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define EMX_RESULT_CONCAT_INNER(a, b) a##b
#define EMX_RESULT_CONCAT(a, b) EMX_RESULT_CONCAT_INNER(a, b)

}  // namespace emx

#endif  // EMX_CORE_RESULT_H_
