#include "src/core/failpoint.h"

#include <chrono>
#include <cstdlib>

#include "src/core/strings.h"

namespace emx {

void FailPoint::Arm(const FailPointConfig& config) {
  std::lock_guard<std::mutex> lk(mu_);
  config_ = config;
  remaining_ = config.count;
  rng_ = RandomEngine(config.seed);
  ++arm_epoch_;
  // Release-publish after the config is in place so a concurrent Check()
  // that observes armed_ == true always sees the new config under mu_.
  armed_.store(true, std::memory_order_release);
  cv_.notify_all();
}

void FailPoint::Disarm() {
  std::lock_guard<std::mutex> lk(mu_);
  armed_.store(false, std::memory_order_release);
  ++arm_epoch_;
  cv_.notify_all();
}

void FailPoint::ResetCounters() {
  hits_.store(0, std::memory_order_relaxed);
  fires_.store(0, std::memory_order_relaxed);
}

Status FailPoint::Evaluate() {
  std::unique_lock<std::mutex> lk(mu_);
  // Re-check under the lock: a concurrent Disarm() may have won.
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  hits_.fetch_add(1, std::memory_order_relaxed);

  bool fire = false;
  switch (config_.mode) {
    case FailPointMode::kOff:
      break;
    case FailPointMode::kError:
      fire = true;
      break;
    case FailPointMode::kProb:
      fire = rng_.NextBernoulli(config_.probability);
      break;
    case FailPointMode::kBlock: {
      // Park the caller until the point is re-armed or disarmed (epoch
      // change), bounded by the configured timeout. Counts as a fire so
      // `count=N` releases after N blocked hits by auto-disarming.
      fires_.fetch_add(1, std::memory_order_relaxed);
      if (remaining_ > 0 && --remaining_ == 0) {
        armed_.store(false, std::memory_order_release);
        ++arm_epoch_;
        cv_.notify_all();
        return Status::OK();
      }
      const uint64_t entry_epoch = arm_epoch_;
      cv_.wait_for(lk, std::chrono::milliseconds(config_.block_timeout_ms),
                   [&] { return arm_epoch_ != entry_epoch; });
      return Status::OK();
    }
  }
  if (!fire) return Status::OK();

  fires_.fetch_add(1, std::memory_order_relaxed);
  if (remaining_ > 0 && --remaining_ == 0) {
    armed_.store(false, std::memory_order_release);
  }
  return Status::FromCode(
      config_.code,
      "failpoint '" + name_ + "' injected " +
          std::string(StatusCodeToString(config_.code)));
}

FailPointRegistry& FailPointRegistry::Global() {
  static FailPointRegistry* registry = new FailPointRegistry();  // leaked
  return *registry;
}

FailPoint& FailPointRegistry::GetOrCreate(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  std::unique_ptr<FailPoint>& slot = points_[name];
  if (slot == nullptr) slot = std::make_unique<FailPoint>(name);
  return *slot;
}

FailPoint* FailPointRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? nullptr : it->second.get();
}

namespace {

// Parses "error(IoError)" / "prob(0.25)" / "off" into `config`.
Status ParseMode(const std::string& token, FailPointConfig* config) {
  if (token == "off") {
    config->mode = FailPointMode::kOff;
    return Status::OK();
  }
  if (token == "block") {
    config->mode = FailPointMode::kBlock;
    return Status::OK();
  }
  size_t open = token.find('(');
  if (open == std::string::npos || token.back() != ')') {
    return Status::InvalidArgument(
        "bad failpoint mode '" + token +
        "' (want off, block, error(<code>), prob(<p>))");
  }
  std::string kind = token.substr(0, open);
  std::string arg = token.substr(open + 1, token.size() - open - 2);
  if (kind == "error") {
    StatusCode code;
    if (!StatusCodeFromString(arg, &code) || code == StatusCode::kOk) {
      return Status::InvalidArgument("bad failpoint error code '" + arg + "'");
    }
    config->mode = FailPointMode::kError;
    config->code = code;
    return Status::OK();
  }
  if (kind == "prob") {
    char* end = nullptr;
    double p = std::strtod(arg.c_str(), &end);
    if (end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("bad failpoint probability '" + arg +
                                     "' (want a number in [0,1])");
    }
    config->mode = FailPointMode::kProb;
    config->probability = p;
    return Status::OK();
  }
  return Status::InvalidArgument("unknown failpoint mode '" + kind + "'");
}

Status ParseOption(const std::string& token, FailPointConfig* config) {
  size_t eq = token.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("bad failpoint option '" + token +
                                   "' (want key=value)");
  }
  std::string key = token.substr(0, eq);
  std::string value = token.substr(eq + 1);
  char* end = nullptr;
  long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value.empty()) {
    return Status::InvalidArgument("bad failpoint option value '" + token +
                                   "'");
  }
  if (key == "count") {
    if (v <= 0) {
      return Status::InvalidArgument("failpoint count must be positive: '" +
                                     token + "'");
    }
    config->count = v;
    return Status::OK();
  }
  if (key == "seed") {
    config->seed = static_cast<uint64_t>(v);
    return Status::OK();
  }
  if (key == "timeout_ms") {
    if (v <= 0) {
      return Status::InvalidArgument(
          "failpoint timeout_ms must be positive: '" + token + "'");
    }
    config->block_timeout_ms = v;
    return Status::OK();
  }
  return Status::InvalidArgument("unknown failpoint option '" + key + "'");
}

}  // namespace

Status FailPointRegistry::ArmFromSpec(const std::string& spec) {
  size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) {
    return Status::InvalidArgument(
        "bad failpoint spec '" + spec +
        "' (want <name>:<mode>[,key=value...])");
  }
  std::string name = spec.substr(0, colon);
  std::vector<std::string> tokens = Split(spec.substr(colon + 1), ',');
  if (tokens.empty() || tokens[0].empty()) {
    return Status::InvalidArgument("failpoint spec '" + spec +
                                   "' is missing a mode");
  }
  FailPointConfig config;
  EMX_RETURN_IF_ERROR(ParseMode(tokens[0], &config));
  for (size_t i = 1; i < tokens.size(); ++i) {
    EMX_RETURN_IF_ERROR(ParseOption(tokens[i], &config));
  }
  GetOrCreate(name).Arm(config);
  return Status::OK();
}

Status FailPointRegistry::ArmFromSpecList(const std::string& specs) {
  for (const std::string& spec : Split(specs, ';')) {
    if (std::string_view stripped = StripWhitespace(spec); !stripped.empty()) {
      EMX_RETURN_IF_ERROR(ArmFromSpec(std::string(stripped)));
    }
  }
  return Status::OK();
}

Status FailPointRegistry::ArmFromEnv() {
  const char* env = std::getenv("EMX_FAILPOINTS");
  if (env == nullptr || *env == '\0') return Status::OK();
  return ArmFromSpecList(env);
}

void FailPointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, point] : points_) point->Disarm();
}

std::vector<std::string> FailPointRegistry::ArmedNames() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  for (const auto& [name, point] : points_) {
    if (point->armed()) out.push_back(name);
  }
  return out;
}

}  // namespace emx
