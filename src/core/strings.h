#ifndef EMX_CORE_STRINGS_H_
#define EMX_CORE_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace emx {

// ASCII-only string helpers used throughout the library. Entity-matching
// normalization in the paper's pipeline (lowercasing, punctuation stripping)
// operates on ASCII award titles; non-ASCII bytes pass through unchanged.

// Lowercases ASCII letters.
std::string AsciiToLower(std::string_view s);

// Uppercases ASCII letters.
std::string AsciiToUpper(std::string_view s);

// Removes leading and trailing whitespace.
std::string_view StripWhitespace(std::string_view s);

// Splits on a single character delimiter. Keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

// Splits on runs of whitespace. Drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Replaces every character not in [A-Za-z0-9 ] with a space. This is the
// "remove special characters" normalization of Section 7 of the paper.
std::string StripPunctuation(std::string_view s);

// True if `s` consists only of ASCII digits (and is non-empty).
bool IsAllDigits(std::string_view s);

// Parses a human byte size: a non-negative integer with an optional
// k/m/g/t suffix (case-insensitive, optional trailing 'b'), e.g. "64M",
// "512kb", "2g", "1048576". Returns false on malformed input or overflow.
// Used by the --block-mem-budget flag and the partitioned blocking engine.
bool ParseByteSize(std::string_view s, size_t* out);

// True if `prefix`/`suffix` bounds `s`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace emx

#endif  // EMX_CORE_STRINGS_H_
