#ifndef EMX_CORE_STATUS_H_
#define EMX_CORE_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace emx {

// Error category for a failed operation. Mirrors the RocksDB/Arrow idiom:
// the library never throws across its API boundary; fallible operations
// return a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kParseError,
  kFailedPrecondition,
  kInternal,
  kNotImplemented,
  kUnavailable,  // transient overload: retry later (serve-mode shedding)
};

// Returns a stable human-readable name ("InvalidArgument", ...) for `code`.
std::string_view StatusCodeToString(StatusCode code);

// Inverse of StatusCodeToString: parses "IoError", "NotFound", ... into
// `out`. Returns false (leaving `out` untouched) for unknown names. Used by
// the failpoint spec parser, which names injected codes textually.
bool StatusCodeFromString(std::string_view name, StatusCode* out);

// A Status is either OK (the cheap, common case: no allocation) or an error
// code plus a message describing what went wrong.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  // Builds an error from a runtime-chosen code (failpoints inject whatever
  // code they were armed with). `code` must not be kOk; kOk degrades to an
  // Internal error rather than minting a message-carrying OK.
  static Status FromCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) {
      return Status(StatusCode::kInternal,
                    "Status::FromCode called with kOk: " + std::move(msg));
    }
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Propagates a non-OK Status to the caller. Usable only in functions
// returning Status.
#define EMX_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::emx::Status _emx_status = (expr);            \
    if (!_emx_status.ok()) return _emx_status;     \
  } while (false)

}  // namespace emx

#endif  // EMX_CORE_STATUS_H_
