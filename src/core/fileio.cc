#include "src/core/fileio.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <sys/stat.h>

namespace emx {

Result<std::string> ReadFileToString(const std::string& path) {
  errno = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::string detail = path + ": " + std::strerror(errno);
    if (errno == ENOENT) return Status::NotFound(std::move(detail));
    return Status::IoError(std::move(detail));
  }
  std::string content;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, got);
  }
  if (std::ferror(f)) {
    std::string detail = path + ": read failed: " + std::strerror(errno);
    std::fclose(f);
    return Status::IoError(std::move(detail));
  }
  std::fclose(f);
  return content;
}

Status WriteStringToFile(const std::string& content, const std::string& path) {
  errno = 0;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(path + ": cannot open for writing: " +
                           std::strerror(errno));
  }
  size_t wrote = content.empty()
                     ? 0
                     : std::fwrite(content.data(), 1, content.size(), f);
  if (wrote != content.size()) {
    std::string detail = path + ": write failed: " + std::strerror(errno);
    std::fclose(f);
    std::remove(path.c_str());
    return Status::IoError(std::move(detail));
  }
  if (std::fflush(f) != 0) {
    std::string detail = path + ": flush failed: " + std::strerror(errno);
    std::fclose(f);
    std::remove(path.c_str());
    return Status::IoError(std::move(detail));
  }
  if (std::fclose(f) != 0) {
    std::remove(path.c_str());
    return Status::IoError(path + ": close failed: " + std::strerror(errno));
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& content, const std::string& path) {
  std::string tmp = path + ".tmp";
  EMX_RETURN_IF_ERROR(WriteStringToFile(content, tmp));
  errno = 0;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::string detail =
        path + ": rename from temp failed: " + std::strerror(errno);
    std::remove(tmp.c_str());
    return Status::IoError(std::move(detail));
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace emx
