#ifndef EMX_BLOCK_ATTR_EQUIVALENCE_BLOCKER_H_
#define EMX_BLOCK_ATTR_EQUIVALENCE_BLOCKER_H_

#include <functional>
#include <string>

#include "src/block/blocker.h"

namespace emx {

// Attribute-equivalence (AE) blocker: a pair survives iff the (transformed)
// blocking attributes of both records are equal and non-null (§7 step 1).
//
// The paper's M1 rule compares the *suffix* of the UMETRICS award number
// with the full USDA award number; rather than materializing a temporary
// column the way the authors did, each side takes an optional transform
// applied to the attribute value before comparison.
class AttrEquivalenceBlocker : public Blocker {
 public:
  using Transform = std::function<std::string(const std::string&)>;

  AttrEquivalenceBlocker(std::string left_attr, std::string right_attr,
                         Transform left_transform = nullptr,
                         Transform right_transform = nullptr);

  using Blocker::Block;
  Result<CandidateSet> Block(const Table& left, const Table& right,
                             const ExecutorContext& ctx) const override;

  std::string name() const override {
    return "ae(" + left_attr_ + "=" + right_attr_ + ")";
  }

 private:
  std::string left_attr_;
  std::string right_attr_;
  Transform left_transform_;
  Transform right_transform_;
};

}  // namespace emx

#endif  // EMX_BLOCK_ATTR_EQUIVALENCE_BLOCKER_H_
