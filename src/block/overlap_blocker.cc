#include "src/block/overlap_blocker.h"

#include <algorithm>
#include <unordered_map>

#include "src/core/strings.h"

namespace emx {

namespace internal_block {

std::vector<std::vector<std::string>> TokenizeColumn(
    const std::vector<Value>& column, const OverlapBlockerOptions& options,
    const Tokenizer& tokenizer) {
  std::vector<std::vector<std::string>> out;
  out.reserve(column.size());
  for (const Value& v : column) {
    if (v.is_null()) {
      out.emplace_back();
      continue;
    }
    std::string s = v.AsString();
    if (options.lowercase) s = AsciiToLower(s);
    if (options.strip_punctuation) s = StripPunctuation(s);
    out.push_back(tokenizer.Tokenize(s));
  }
  return out;
}

namespace {

// Builds token -> list of right-record ids.
std::unordered_map<std::string, std::vector<uint32_t>> BuildInvertedIndex(
    const std::vector<std::vector<std::string>>& right_tokens) {
  std::unordered_map<std::string, std::vector<uint32_t>> index;
  for (size_t r = 0; r < right_tokens.size(); ++r) {
    for (const auto& t : right_tokens[r]) {
      index[t].push_back(static_cast<uint32_t>(r));
    }
  }
  return index;
}

}  // namespace

// Shared core: for every left record, counts shared tokens with each right
// record via the inverted index, then keeps pairs passing `keep`. The index
// is built once (read-only during probing), then left records probe it in
// parallel chunks; per-chunk pair vectors concatenate in chunk order before
// the (order-insensitive) CandidateSet canonicalization.
template <typename KeepFn>
CandidateSet OverlapJoin(
    const std::vector<std::vector<std::string>>& left_tokens,
    const std::vector<std::vector<std::string>>& right_tokens,
    const KeepFn& keep, const ExecutorContext& ctx) {
  auto index = BuildInvertedIndex(right_tokens);
  std::vector<RecordPair> pairs = ctx.get().ParallelFlatMap(
      left_tokens.size(), /*grain=*/0,
      [&](size_t lo, size_t hi) {
        std::vector<RecordPair> out;
        std::unordered_map<uint32_t, size_t> counts;
        for (size_t l = lo; l < hi; ++l) {
          counts.clear();
          for (const auto& t : left_tokens[l]) {
            auto it = index.find(t);
            if (it == index.end()) continue;
            for (uint32_t r : it->second) ++counts[r];
          }
          for (const auto& [r, overlap] : counts) {
            if (keep(left_tokens[l].size(), right_tokens[r].size(), overlap)) {
              out.push_back({static_cast<uint32_t>(l), r});
            }
          }
        }
        return out;
      });
  return CandidateSet(std::move(pairs));
}

}  // namespace internal_block

OverlapBlocker::OverlapBlocker(OverlapBlockerOptions options,
                               size_t min_overlap,
                               std::shared_ptr<Tokenizer> tokenizer)
    : options_(std::move(options)),
      min_overlap_(min_overlap),
      tokenizer_(tokenizer ? std::move(tokenizer)
                           : std::make_shared<WhitespaceTokenizer>()) {}

Result<CandidateSet> OverlapBlocker::Block(const Table& left,
                                           const Table& right,
                                           const ExecutorContext& ctx) const {
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* lcol,
                       left.ColumnByName(options_.left_attr));
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* rcol,
                       right.ColumnByName(options_.right_attr));
  auto lt = internal_block::TokenizeColumn(*lcol, options_, *tokenizer_);
  auto rt = internal_block::TokenizeColumn(*rcol, options_, *tokenizer_);
  size_t k = min_overlap_;
  return internal_block::OverlapJoin(
      lt, rt, [k](size_t, size_t, size_t overlap) { return overlap >= k; },
      ctx);
}

std::string OverlapBlocker::name() const {
  return "overlap(" + options_.left_attr + "," + tokenizer_->name() +
         ",K=" + std::to_string(min_overlap_) + ")";
}

OverlapCoefficientBlocker::OverlapCoefficientBlocker(
    OverlapBlockerOptions options, double threshold,
    std::shared_ptr<Tokenizer> tokenizer)
    : options_(std::move(options)),
      threshold_(threshold),
      tokenizer_(tokenizer ? std::move(tokenizer)
                           : std::make_shared<WhitespaceTokenizer>()) {}

Result<CandidateSet> OverlapCoefficientBlocker::Block(
    const Table& left, const Table& right, const ExecutorContext& ctx) const {
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* lcol,
                       left.ColumnByName(options_.left_attr));
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* rcol,
                       right.ColumnByName(options_.right_attr));
  auto lt = internal_block::TokenizeColumn(*lcol, options_, *tokenizer_);
  auto rt = internal_block::TokenizeColumn(*rcol, options_, *tokenizer_);
  double t = threshold_;
  return internal_block::OverlapJoin(
      lt, rt,
      [t](size_t la, size_t lb, size_t overlap) {
        size_t mn = std::min(la, lb);
        if (mn == 0) return false;
        return static_cast<double>(overlap) >= t * static_cast<double>(mn);
      },
      ctx);
}

std::string OverlapCoefficientBlocker::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", threshold_);
  return "overlap_coeff(" + options_.left_attr + "," + tokenizer_->name() +
         ",t=" + buf + ")";
}

}  // namespace emx
