#include "src/block/overlap_blocker.h"

#include <algorithm>
#include <unordered_map>

#include "src/block/partitioned_blocker.h"
#include "src/core/strings.h"

namespace emx {

namespace internal_block {

std::vector<std::vector<std::string>> TokenizeColumn(
    const std::vector<Value>& column, const OverlapBlockerOptions& options,
    const Tokenizer& tokenizer) {
  std::vector<std::vector<std::string>> out;
  out.reserve(column.size());
  for (const Value& v : column) {
    if (v.is_null()) {
      out.emplace_back();
      continue;
    }
    std::string s = v.AsString();
    if (options.lowercase) s = AsciiToLower(s);
    if (options.strip_punctuation) s = StripPunctuation(s);
    out.push_back(tokenizer.Tokenize(s));
  }
  return out;
}

namespace {

// Builds token -> list of right-record ids (legacy string-keyed form).
std::unordered_map<std::string, std::vector<uint32_t>> BuildInvertedIndex(
    const std::vector<std::vector<std::string>>& right_tokens) {
  std::unordered_map<std::string, std::vector<uint32_t>> index;
  size_t total = 0;
  for (const auto& tokens : right_tokens) total += tokens.size();
  // Most tokens repeat across records; half the posting count is a decent
  // distinct-token estimate that avoids the worst rehash cascades.
  index.reserve(total / 2 + 1);
  for (size_t r = 0; r < right_tokens.size(); ++r) {
    for (const auto& t : right_tokens[r]) {
      index[t].push_back(static_cast<uint32_t>(r));
    }
  }
  return index;
}

// CSR inverted index over token ids: postings_[offsets_[id] ..
// offsets_[id+1]) lists the right records containing id, in ascending
// record order (rows are scanned in order). Exact-size allocation, no
// per-token vectors.
struct IdIndex {
  std::vector<uint32_t> offsets;   // num_ids + 1
  std::vector<uint32_t> postings;  // right record ids

  explicit IdIndex(const PreparedColumn& right) {
    uint32_t num_ids = 0;
    for (size_t r = 0; r < right.rows(); ++r) {
      IdSpan s = right.ids(r);
      // Spans are sorted, so the last element is the row maximum.
      if (s.size > 0) num_ids = std::max(num_ids, s.data[s.size - 1] + 1);
    }
    offsets.assign(num_ids + 1, 0);
    for (size_t r = 0; r < right.rows(); ++r) {
      for (uint32_t id : right.ids(r)) ++offsets[id + 1];
    }
    for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
    postings.resize(offsets.back());
    std::vector<uint32_t> fill(offsets.begin(), offsets.end() - 1);
    for (size_t r = 0; r < right.rows(); ++r) {
      for (uint32_t id : right.ids(r)) {
        postings[fill[id]++] = static_cast<uint32_t>(r);
      }
    }
  }

  uint32_t num_ids() const {
    return static_cast<uint32_t>(offsets.size() - 1);
  }
  uint32_t frequency(uint32_t id) const {
    return id < num_ids() ? offsets[id + 1] - offsets[id] : 0;
  }
};

}  // namespace

// Legacy shared core: for every left record, counts shared tokens with each
// right record via the string inverted index, then keeps pairs passing
// `keep`. Retained as the equivalence oracle for the id-based join below.
CandidateSet OverlapJoinStrings(
    const std::vector<std::vector<std::string>>& left_tokens,
    const std::vector<std::vector<std::string>>& right_tokens,
    const OverlapKeepFn& keep, const ExecutorContext& ctx) {
  auto index = BuildInvertedIndex(right_tokens);
  std::vector<RecordPair> pairs = ctx.get().ParallelFlatMap(
      left_tokens.size(), /*grain=*/0,
      [&](size_t lo, size_t hi) {
        std::vector<RecordPair> out;
        std::unordered_map<uint32_t, size_t> counts;
        for (size_t l = lo; l < hi; ++l) {
          counts.clear();
          for (const auto& t : left_tokens[l]) {
            auto it = index.find(t);
            if (it == index.end()) continue;
            for (uint32_t r : it->second) ++counts[r];
          }
          for (const auto& [r, overlap] : counts) {
            if (keep(left_tokens[l].size(), right_tokens[r].size(), overlap)) {
              out.push_back({static_cast<uint32_t>(l), r});
            }
          }
        }
        return out;
      });
  return CandidateSet(std::move(pairs));
}

// Id-based MONOLITHIC core: one index over the whole right table, probed
// by left records in parallel chunks. Per chunk, a dense uint32 count
// array (one slot per right record) replaces the per-probe hash map; the
// touched-list makes the reset proportional to candidates, not to the
// right table. Per-chunk pair vectors concatenate in chunk order before the
// (order-insensitive) CandidateSet canonicalization, so the result is
// identical at any thread count.
//
// Production blocking now routes through PartitionedOverlapJoin
// (partitioned_blocker.h), which bounds the working set to a memory
// budget; this single-partition form is RETAINED as the equivalence oracle
// for the partitioned engine's tests and before/after benches.
CandidateSet OverlapJoinIds(const PreparedColumn& left,
                            const PreparedColumn& right,
                            const OverlapKeepFn& keep,
                            const ExecutorContext& ctx) {
  IdIndex index(right);
  size_t num_right = right.rows();
  std::vector<RecordPair> pairs = ctx.get().ParallelFlatMap(
      left.rows(), /*grain=*/0,
      [&](size_t lo, size_t hi) {
        std::vector<RecordPair> out;
        std::vector<uint32_t> counts(num_right, 0);
        std::vector<uint32_t> touched;
        std::vector<uint32_t> probe;
        for (size_t l = lo; l < hi; ++l) {
          IdSpan ids = left.ids(l);
          probe.assign(ids.begin(), ids.end());
          // Rare tokens first: short postings fill the touched-list before
          // frequent tokens rescan mostly-warm slots.
          std::sort(probe.begin(), probe.end(),
                    [&index](uint32_t a, uint32_t b) {
                      uint32_t fa = index.frequency(a);
                      uint32_t fb = index.frequency(b);
                      if (fa != fb) return fa < fb;
                      return a < b;
                    });
          for (uint32_t id : probe) {
            if (id >= index.num_ids()) continue;
            for (uint32_t i = index.offsets[id]; i < index.offsets[id + 1];
                 ++i) {
              uint32_t r = index.postings[i];
              if (counts[r]++ == 0) touched.push_back(r);
            }
          }
          for (uint32_t r : touched) {
            if (keep(ids.size, right.ids(r).size, counts[r])) {
              out.push_back({static_cast<uint32_t>(l), r});
            }
            counts[r] = 0;
          }
          touched.clear();
        }
        return out;
      });
  return CandidateSet(std::move(pairs));
}

}  // namespace internal_block

namespace {

// Preps both join columns through the installed workflow cache, or a local
// one for standalone Block calls — either way both sides share one interner
// so their id spans are directly comparable.
struct PreparedPair {
  std::shared_ptr<const PreparedColumn> left;
  std::shared_ptr<const PreparedColumn> right;
};

PreparedPair PrepareJoinColumns(const std::vector<Value>& lcol,
                                const std::vector<Value>& rcol,
                                const OverlapBlockerOptions& options,
                                const Tokenizer& tokenizer,
                                const std::shared_ptr<PrepCache>& shared) {
  PrepCache local;
  PrepCache& cache = shared ? *shared : local;
  PrepOptions prep = internal_block::ToPrepOptions(options);
  return {cache.Get(lcol, prep, &tokenizer), cache.Get(rcol, prep, &tokenizer)};
}

}  // namespace

OverlapBlocker::OverlapBlocker(OverlapBlockerOptions options,
                               size_t min_overlap,
                               std::shared_ptr<Tokenizer> tokenizer)
    : options_(std::move(options)),
      min_overlap_(min_overlap),
      tokenizer_(tokenizer ? std::move(tokenizer)
                           : std::make_shared<WhitespaceTokenizer>()) {}

Result<CandidateSet> OverlapBlocker::Block(const Table& left,
                                           const Table& right,
                                           const ExecutorContext& ctx) const {
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* lcol,
                       left.ColumnByName(options_.left_attr));
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* rcol,
                       right.ColumnByName(options_.right_attr));
  PreparedPair p =
      PrepareJoinColumns(*lcol, *rcol, options_, *tokenizer_, prep_cache_);
  size_t k = min_overlap_;
  internal_block::BlockBudget budget;
  budget.mem_budget_bytes = options_.mem_budget_bytes;
  return internal_block::PartitionedOverlapJoin(
      *p.left, *p.right,
      [k](size_t, size_t, size_t overlap) { return overlap >= k; },
      /*min_left_tokens=*/k, budget, ctx);
}

std::string OverlapBlocker::name() const {
  return "overlap(" + options_.left_attr + "," + tokenizer_->name() +
         ",K=" + std::to_string(min_overlap_) + ")";
}

OverlapCoefficientBlocker::OverlapCoefficientBlocker(
    OverlapBlockerOptions options, double threshold,
    std::shared_ptr<Tokenizer> tokenizer)
    : options_(std::move(options)),
      threshold_(threshold),
      tokenizer_(tokenizer ? std::move(tokenizer)
                           : std::make_shared<WhitespaceTokenizer>()) {}

Result<CandidateSet> OverlapCoefficientBlocker::Block(
    const Table& left, const Table& right, const ExecutorContext& ctx) const {
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* lcol,
                       left.ColumnByName(options_.left_attr));
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* rcol,
                       right.ColumnByName(options_.right_attr));
  PreparedPair p =
      PrepareJoinColumns(*lcol, *rcol, options_, *tokenizer_, prep_cache_);
  double t = threshold_;
  internal_block::BlockBudget budget;
  budget.mem_budget_bytes = options_.mem_budget_bytes;
  return internal_block::PartitionedOverlapJoin(
      *p.left, *p.right,
      [t](size_t la, size_t lb, size_t overlap) {
        size_t mn = std::min(la, lb);
        if (mn == 0) return false;
        return static_cast<double>(overlap) >= t * static_cast<double>(mn);
      },
      /*min_left_tokens=*/1, budget, ctx);
}

std::string OverlapCoefficientBlocker::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", threshold_);
  return "overlap_coeff(" + options_.left_attr + "," + tokenizer_->name() +
         ",t=" + buf + ")";
}

}  // namespace emx
