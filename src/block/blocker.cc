#include "src/block/blocker.h"

#include <algorithm>

namespace emx {

Result<CandidateSet> BlockSelf(const Blocker& blocker, const Table& table,
                               const ExecutorContext& ctx) {
  EMX_ASSIGN_OR_RETURN(CandidateSet raw, blocker.Block(table, table, ctx));
  std::vector<RecordPair> out;
  out.reserve(raw.size() / 2);
  for (const RecordPair& p : raw) {
    if (p.left == p.right) continue;  // a record trivially matches itself
    out.push_back({std::min(p.left, p.right), std::max(p.left, p.right)});
  }
  return CandidateSet(std::move(out));
}

}  // namespace emx
