#include "src/block/candidate_set.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "src/core/strings.h"

namespace emx {

CandidateSet::CandidateSet(std::vector<RecordPair> pairs)
    : pairs_(std::move(pairs)) {
  std::sort(pairs_.begin(), pairs_.end());
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end()), pairs_.end());
}

bool CandidateSet::Contains(const RecordPair& p) const {
  return std::binary_search(pairs_.begin(), pairs_.end(), p);
}

CandidateSet CandidateSet::Union(const CandidateSet& a, const CandidateSet& b) {
  CandidateSet out;
  out.pairs_.reserve(a.size() + b.size());
  std::set_union(a.pairs_.begin(), a.pairs_.end(), b.pairs_.begin(),
                 b.pairs_.end(), std::back_inserter(out.pairs_));
  return out;
}

CandidateSet CandidateSet::Minus(const CandidateSet& a, const CandidateSet& b) {
  CandidateSet out;
  out.pairs_.reserve(a.size());
  std::set_difference(a.pairs_.begin(), a.pairs_.end(), b.pairs_.begin(),
                      b.pairs_.end(), std::back_inserter(out.pairs_));
  return out;
}

CandidateSet CandidateSet::Intersect(const CandidateSet& a,
                                     const CandidateSet& b) {
  CandidateSet out;
  std::set_intersection(a.pairs_.begin(), a.pairs_.end(), b.pairs_.begin(),
                        b.pairs_.end(), std::back_inserter(out.pairs_));
  return out;
}

CandidateSet CandidateSet::WithLeftOffset(uint32_t left_offset) const {
  CandidateSet out;
  out.pairs_.reserve(pairs_.size());
  for (const RecordPair& p : pairs_) {
    out.pairs_.push_back({p.left + left_offset, p.right});
  }
  // Adding a constant to sorted keys preserves order and uniqueness.
  return out;
}

CandidateSet CandidateSet::UnionAll(
    const std::vector<const CandidateSet*>& sets) {
  CandidateSet out;
  for (const CandidateSet* s : sets) {
    out = Union(out, *s);
  }
  return out;
}

namespace {
constexpr char kCandidatesHeader[] = "emx-candidates v1";

// Parses a base-10 uint32 field; false on anything else (sign, overflow,
// trailing junk).
bool ParseU32(const std::string& s, uint32_t* out) {
  if (s.empty() || s[0] == '-' || s[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || v > UINT32_MAX) {
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}
}  // namespace

std::string SerializeCandidateSet(const CandidateSet& set) {
  std::string out = kCandidatesHeader;
  out += '\n';
  out += std::to_string(set.size());
  out += '\n';
  for (const RecordPair& p : set) {
    out += std::to_string(p.left);
    out += ' ';
    out += std::to_string(p.right);
    out += '\n';
  }
  return out;
}

Result<CandidateSet> DeserializeCandidateSet(const std::string& text) {
  std::vector<std::string> lines = Split(text, '\n');
  // A trailing newline yields one empty final element; drop it.
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty() || lines[0] != kCandidatesHeader) {
    return Status::ParseError(
        "candidate set artifact: missing or bad header (want '" +
        std::string(kCandidatesHeader) + "')");
  }
  uint32_t declared = 0;
  if (lines.size() < 2 || !ParseU32(lines[1], &declared)) {
    return Status::ParseError(
        "candidate set artifact: bad pair count on line 2");
  }
  if (lines.size() - 2 != declared) {
    return Status::ParseError(
        "candidate set artifact: declared " + std::to_string(declared) +
        " pairs but found " + std::to_string(lines.size() - 2) +
        " (truncated or padded artifact)");
  }
  std::vector<RecordPair> pairs;
  pairs.reserve(declared);
  for (size_t i = 2; i < lines.size(); ++i) {
    std::vector<std::string> parts = SplitWhitespace(lines[i]);
    RecordPair p;
    if (parts.size() != 2 || !ParseU32(parts[0], &p.left) ||
        !ParseU32(parts[1], &p.right)) {
      return Status::ParseError("candidate set artifact: bad pair on line " +
                                std::to_string(i + 1) + ": '" + lines[i] +
                                "'");
    }
    pairs.push_back(p);
  }
  return CandidateSet(std::move(pairs));
}

}  // namespace emx
