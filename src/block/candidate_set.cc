#include "src/block/candidate_set.h"

#include <algorithm>

namespace emx {

CandidateSet::CandidateSet(std::vector<RecordPair> pairs)
    : pairs_(std::move(pairs)) {
  std::sort(pairs_.begin(), pairs_.end());
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end()), pairs_.end());
}

bool CandidateSet::Contains(const RecordPair& p) const {
  return std::binary_search(pairs_.begin(), pairs_.end(), p);
}

CandidateSet CandidateSet::Union(const CandidateSet& a, const CandidateSet& b) {
  CandidateSet out;
  out.pairs_.reserve(a.size() + b.size());
  std::set_union(a.pairs_.begin(), a.pairs_.end(), b.pairs_.begin(),
                 b.pairs_.end(), std::back_inserter(out.pairs_));
  return out;
}

CandidateSet CandidateSet::Minus(const CandidateSet& a, const CandidateSet& b) {
  CandidateSet out;
  out.pairs_.reserve(a.size());
  std::set_difference(a.pairs_.begin(), a.pairs_.end(), b.pairs_.begin(),
                      b.pairs_.end(), std::back_inserter(out.pairs_));
  return out;
}

CandidateSet CandidateSet::Intersect(const CandidateSet& a,
                                     const CandidateSet& b) {
  CandidateSet out;
  std::set_intersection(a.pairs_.begin(), a.pairs_.end(), b.pairs_.begin(),
                        b.pairs_.end(), std::back_inserter(out.pairs_));
  return out;
}

CandidateSet CandidateSet::WithLeftOffset(uint32_t left_offset) const {
  CandidateSet out;
  out.pairs_.reserve(pairs_.size());
  for (const RecordPair& p : pairs_) {
    out.pairs_.push_back({p.left + left_offset, p.right});
  }
  // Adding a constant to sorted keys preserves order and uniqueness.
  return out;
}

CandidateSet CandidateSet::UnionAll(
    const std::vector<const CandidateSet*>& sets) {
  CandidateSet out;
  for (const CandidateSet* s : sets) {
    out = Union(out, *s);
  }
  return out;
}

}  // namespace emx
