#ifndef EMX_BLOCK_PARTITIONED_BLOCKER_H_
#define EMX_BLOCK_PARTITIONED_BLOCKER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/block/candidate_set.h"
#include "src/block/overlap_blocker.h"
#include "src/core/executor.h"
#include "src/prep/prepared_column.h"

namespace emx {
namespace internal_block {

// Out-of-core candidate generation: the right table is split into record
// partitions sized so one partition's CSR inverted index — plus the dense
// per-right-record count/touched working set — fits a caller-supplied
// memory budget. Partitions are indexed and probed one at a time (probing
// parallelizes over left-table chunks on the executor); per-partition pair
// vectors concatenate in partition order before the order-insensitive
// CandidateSet canonicalization, so the output is BIT-IDENTICAL to the
// monolithic join at any budget, partition size, and thread count: whether
// a pair (l, r) survives depends only on the two records' token spans,
// never on which partition r landed in.
struct BlockBudget {
  // Peak working-set bytes for the index + probe scratch. 0 = unbounded:
  // one partition covering the whole right table (the monolithic layout).
  size_t mem_budget_bytes = 0;

  // Partition-size floor. A budget smaller than the per-partition fixed
  // cost (the id-space offset array) degrades to this many rows per
  // partition rather than failing — logged, not fatal.
  size_t min_partition_rows = 1024;
};

struct PartitionPlan {
  size_t rows_per_partition = 0;  // == right rows when num_partitions == 1
  size_t num_partitions = 1;
  // The estimate the plan was derived from, for logging/bench reporting.
  size_t estimated_partition_bytes = 0;
};

// Derives the plan from the right side's shape: `right_rows` records
// carrying `token_occurrences` postings over `distinct_ids` token ids.
// Deterministic — depends only on these sizes and the budget (NOT the
// thread count), so a given (corpus, budget) always partitions identically.
PartitionPlan PlanPartitions(size_t right_rows, size_t token_occurrences,
                             size_t distinct_ids, const BlockBudget& budget);

// CSR inverted index over one right-table row range [row_begin, row_end):
// postings[offsets[id] .. offsets[id+1]) lists the LOCAL offsets
// (row - row_begin) of the range's records containing id, ascending.
// Offsets are 64-bit: at 1M x 1M scale a hot-token corpus can exceed 4B
// postings in the unbounded single-partition layout, and the cumulative
// sums here are exactly the counters a uint32 would wrap (the PR-9 size
// audit; local postings stay uint32 because a partition is row-bounded).
class RangeIdIndex {
 public:
  RangeIdIndex(const PreparedColumn& right, size_t row_begin, size_t row_end);

  uint32_t num_ids() const {
    return static_cast<uint32_t>(offsets_.size() - 1);
  }
  uint64_t frequency(uint32_t id) const {
    return id < num_ids() ? offsets_[id + 1] - offsets_[id] : 0;
  }
  const std::vector<uint64_t>& offsets() const { return offsets_; }
  const std::vector<uint32_t>& postings() const { return postings_; }

  // Actual bytes held, for budget accounting and the bench's peak report.
  size_t bytes() const {
    return offsets_.size() * sizeof(uint64_t) +
           postings_.size() * sizeof(uint32_t);
  }

 private:
  std::vector<uint64_t> offsets_;   // num_ids + 1
  std::vector<uint32_t> postings_;  // local right offsets in [0, range size)
};

// Per-run observability for the bench harness: per-partition wall times
// (p50/p99 in BENCH_scale.json) and the peak index working set.
struct PartitionedJoinStats {
  size_t num_partitions = 0;
  size_t peak_index_bytes = 0;
  std::vector<double> partition_ms;
};

// The partitioned overlap join. `keep(left_size, right_size, overlap)`
// decides survival exactly as in OverlapJoinIds (the retained monolithic
// oracle); `min_left_tokens` prunes left records whose token count makes
// `keep` unsatisfiable (overlap <= |left| — pass the overlap blocker's K,
// or 1 when only empty rows are prunable). `stats` may be null.
CandidateSet PartitionedOverlapJoin(const PreparedColumn& left,
                                    const PreparedColumn& right,
                                    const OverlapKeepFn& keep,
                                    size_t min_left_tokens,
                                    const BlockBudget& budget,
                                    const ExecutorContext& ctx,
                                    PartitionedJoinStats* stats = nullptr);

}  // namespace internal_block
}  // namespace emx

#endif  // EMX_BLOCK_PARTITIONED_BLOCKER_H_
