#ifndef EMX_BLOCK_OVERLAP_BLOCKER_H_
#define EMX_BLOCK_OVERLAP_BLOCKER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/block/blocker.h"
#include "src/prep/prepared_column.h"
#include "src/text/tokenizer.h"

namespace emx {

// Shared options for token-overlap-style blockers: which attribute to
// tokenize and how to normalize it first (the paper lowercases and strips
// special characters before overlap blocking, §7 steps 2-3).
struct OverlapBlockerOptions {
  std::string left_attr;
  std::string right_attr;
  bool lowercase = true;
  bool strip_punctuation = true;

  // Peak working-set budget for the blocking index + probe scratch, in
  // bytes (the CLI's --block-mem-budget). 0 = unbounded: a single partition
  // covering the whole right table. Any positive value routes the join
  // through the partitioned engine (see partitioned_blocker.h); the
  // candidate set is bit-identical at every budget.
  size_t mem_budget_bytes = 0;
};

// Overlap blocker: a pair survives iff its token sets share at least
// `min_overlap` tokens (§7 step 2, threshold K; K=3 in the paper).
//
// Implementation: both columns are prepped once into sorted token-id spans
// (via the shared PrepCache when one is installed), then the partitioned
// blocking engine streams right-table partitions — each carrying a flat
// CSR inverted index probed per left record into a dense per-record count
// array with a touched-list for sparse reset — within the options' memory
// budget; never the full Cartesian product, and no per-probe hashing or
// allocation. Left records with fewer than `min_overlap` tokens are pruned
// before probing (they cannot reach the threshold).
class OverlapBlocker : public Blocker {
 public:
  OverlapBlocker(OverlapBlockerOptions options, size_t min_overlap,
                 std::shared_ptr<Tokenizer> tokenizer = nullptr);

  using Blocker::Block;
  Result<CandidateSet> Block(const Table& left, const Table& right,
                             const ExecutorContext& ctx) const override;

  std::string name() const override;

  void set_prep_cache(std::shared_ptr<PrepCache> cache) override {
    prep_cache_ = std::move(cache);
  }

  // Configuration introspection (MatchService::Create replays the same
  // normalization, tokenizer, and keep predicate against its delta index).
  const OverlapBlockerOptions& options() const { return options_; }
  size_t min_overlap() const { return min_overlap_; }
  const std::shared_ptr<Tokenizer>& tokenizer() const { return tokenizer_; }

 private:
  OverlapBlockerOptions options_;
  size_t min_overlap_;
  std::shared_ptr<Tokenizer> tokenizer_;  // defaults to WhitespaceTokenizer
  std::shared_ptr<PrepCache> prep_cache_;  // optional, workflow-scoped
};

// Overlap-coefficient blocker: survives iff
// |A ∩ B| / min(|A|, |B|) >= threshold (§7 step 3; 0.7 in the paper).
// Unlike the raw-overlap blocker this admits very short titles.
class OverlapCoefficientBlocker : public Blocker {
 public:
  OverlapCoefficientBlocker(OverlapBlockerOptions options, double threshold,
                            std::shared_ptr<Tokenizer> tokenizer = nullptr);

  using Blocker::Block;
  Result<CandidateSet> Block(const Table& left, const Table& right,
                             const ExecutorContext& ctx) const override;

  std::string name() const override;

  void set_prep_cache(std::shared_ptr<PrepCache> cache) override {
    prep_cache_ = std::move(cache);
  }

  const OverlapBlockerOptions& options() const { return options_; }
  double threshold() const { return threshold_; }
  const std::shared_ptr<Tokenizer>& tokenizer() const { return tokenizer_; }

 private:
  OverlapBlockerOptions options_;
  double threshold_;
  std::shared_ptr<Tokenizer> tokenizer_;
  std::shared_ptr<PrepCache> prep_cache_;
};

namespace internal_block {

// Normalizes and tokenizes every value of `column` according to `options`.
// Legacy string-token representation — superseded by PrepCache in the hot
// path, kept as the equivalence oracle for tests and before/after benches.
std::vector<std::vector<std::string>> TokenizeColumn(
    const std::vector<Value>& column, const OverlapBlockerOptions& options,
    const Tokenizer& tokenizer);

// `keep(left_size, right_size, overlap)` decides whether a probed pair
// becomes a candidate; sizes are token counts (per-occurrence, i.e. set
// sizes under unique tokenizers).
using OverlapKeepFn = std::function<bool(size_t, size_t, size_t)>;

// Legacy string-keyed overlap join (unordered_map inverted index,
// per-probe hashing). Equivalence oracle only.
CandidateSet OverlapJoinStrings(
    const std::vector<std::vector<std::string>>& left_tokens,
    const std::vector<std::vector<std::string>>& right_tokens,
    const OverlapKeepFn& keep, const ExecutorContext& ctx);

// Token-id overlap join over prepared columns sharing one interner: CSR
// inverted index over right-side ids, rare-token-first probes, dense count
// array + touched-list per chunk. Produces the identical candidate set to
// OverlapJoinStrings over the same tokenization.
CandidateSet OverlapJoinIds(const PreparedColumn& left,
                            const PreparedColumn& right,
                            const OverlapKeepFn& keep,
                            const ExecutorContext& ctx);

// PrepOptions equivalent of a blocker-options normalization.
inline PrepOptions ToPrepOptions(const OverlapBlockerOptions& options) {
  return {options.lowercase, options.strip_punctuation};
}

}  // namespace internal_block

}  // namespace emx

#endif  // EMX_BLOCK_OVERLAP_BLOCKER_H_
