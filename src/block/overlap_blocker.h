#ifndef EMX_BLOCK_OVERLAP_BLOCKER_H_
#define EMX_BLOCK_OVERLAP_BLOCKER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/block/blocker.h"
#include "src/text/tokenizer.h"

namespace emx {

// Shared options for token-overlap-style blockers: which attribute to
// tokenize and how to normalize it first (the paper lowercases and strips
// special characters before overlap blocking, §7 steps 2-3).
struct OverlapBlockerOptions {
  std::string left_attr;
  std::string right_attr;
  bool lowercase = true;
  bool strip_punctuation = true;
};

// Overlap blocker: a pair survives iff its token sets share at least
// `min_overlap` tokens (§7 step 2, threshold K; K=3 in the paper).
//
// Implementation: inverted index over the right table's tokens; left
// records accumulate per-right-record overlap counts touching only records
// that share at least one token — never the full Cartesian product.
class OverlapBlocker : public Blocker {
 public:
  OverlapBlocker(OverlapBlockerOptions options, size_t min_overlap,
                 std::shared_ptr<Tokenizer> tokenizer = nullptr);

  using Blocker::Block;
  Result<CandidateSet> Block(const Table& left, const Table& right,
                             const ExecutorContext& ctx) const override;

  std::string name() const override;

 private:
  OverlapBlockerOptions options_;
  size_t min_overlap_;
  std::shared_ptr<Tokenizer> tokenizer_;  // defaults to WhitespaceTokenizer
};

// Overlap-coefficient blocker: survives iff
// |A ∩ B| / min(|A|, |B|) >= threshold (§7 step 3; 0.7 in the paper).
// Unlike the raw-overlap blocker this admits very short titles.
class OverlapCoefficientBlocker : public Blocker {
 public:
  OverlapCoefficientBlocker(OverlapBlockerOptions options, double threshold,
                            std::shared_ptr<Tokenizer> tokenizer = nullptr);

  using Blocker::Block;
  Result<CandidateSet> Block(const Table& left, const Table& right,
                             const ExecutorContext& ctx) const override;

  std::string name() const override;

 private:
  OverlapBlockerOptions options_;
  double threshold_;
  std::shared_ptr<Tokenizer> tokenizer_;
};

namespace internal_block {

// Normalizes and tokenizes every value of `column` according to `options`.
std::vector<std::vector<std::string>> TokenizeColumn(
    const std::vector<Value>& column, const OverlapBlockerOptions& options,
    const Tokenizer& tokenizer);

}  // namespace internal_block

}  // namespace emx

#endif  // EMX_BLOCK_OVERLAP_BLOCKER_H_
