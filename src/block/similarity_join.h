#ifndef EMX_BLOCK_SIMILARITY_JOIN_H_
#define EMX_BLOCK_SIMILARITY_JOIN_H_

#include <memory>
#include <string>

#include "src/block/blocker.h"
#include "src/block/overlap_blocker.h"
#include "src/text/tokenizer.h"

namespace emx {

// Jaccard similarity-join blocker with prefix filtering — the string-
// filtering machinery footnote 4 alludes to ("PyMatcher's blocking methods
// use string filtering techniques where appropriate").
//
// A pair survives iff jaccard(tokens(a), tokens(b)) >= threshold. Instead
// of comparing all pairs, each record indexes only its PREFIX: with
// |x| tokens and threshold t, any pair meeting t must share a token among
// the first |x| - ceil(t·|x|) + 1 tokens under a global token ordering
// (rarest-first, so prefixes carry the most selective tokens). Candidates
// that share a prefix token are then verified exactly.
class JaccardJoinBlocker : public Blocker {
 public:
  JaccardJoinBlocker(OverlapBlockerOptions options, double threshold,
                     std::shared_ptr<Tokenizer> tokenizer = nullptr);

  Result<CandidateSet> Block(const Table& left,
                             const Table& right) const override;

  std::string name() const override;

  // Pairs whose similarity was exactly verified in the last Block call —
  // exposed so the ablation bench can report filter selectivity.
  size_t last_verified_count() const { return last_verified_; }

 private:
  OverlapBlockerOptions options_;
  double threshold_;
  std::shared_ptr<Tokenizer> tokenizer_;
  mutable size_t last_verified_ = 0;
};

// Sorted-neighborhood blocker: sort both tables by a key expression and
// slide a window of size `window` over the merged order; records from
// opposite tables within a window become candidates. The classic
// alternative blocking family (surveyed in [7] of the paper).
class SortedNeighborhoodBlocker : public Blocker {
 public:
  SortedNeighborhoodBlocker(std::string left_attr, std::string right_attr,
                            size_t window, bool lowercase = true);

  Result<CandidateSet> Block(const Table& left,
                             const Table& right) const override;

  std::string name() const override {
    return "sorted_neighborhood(" + left_attr_ + ",w=" +
           std::to_string(window_) + ")";
  }

 private:
  std::string left_attr_;
  std::string right_attr_;
  size_t window_;
  bool lowercase_;
};

}  // namespace emx

#endif  // EMX_BLOCK_SIMILARITY_JOIN_H_
