#ifndef EMX_BLOCK_SIMILARITY_JOIN_H_
#define EMX_BLOCK_SIMILARITY_JOIN_H_

#include <memory>
#include <string>

#include "src/block/blocker.h"
#include "src/block/overlap_blocker.h"
#include "src/text/tokenizer.h"

namespace emx {

// Filter-selectivity accounting for one Block call, returned explicitly
// instead of stashed in blocker state (the previous `mutable size_t
// last_verified_` made `const Block()` a data race once blockers ran on
// several threads — and silently wrong when one blocker instance served
// two concurrent workflows).
struct BlockStats {
  // Candidate pairs that survived the prefix+size filters and were
  // verified with an exact similarity computation.
  size_t verified = 0;
};

// Jaccard similarity-join blocker with prefix filtering — the string-
// filtering machinery footnote 4 alludes to ("PyMatcher's blocking methods
// use string filtering techniques where appropriate").
//
// A pair survives iff jaccard(tokens(a), tokens(b)) >= threshold. Instead
// of comparing all pairs, each record indexes only its PREFIX: with
// |x| tokens and threshold t, any pair meeting t must share a token among
// the first |x| - ceil(t·|x|) + 1 tokens under a global token ordering
// (rarest-first, so prefixes carry the most selective tokens). Candidates
// that share a prefix token are then verified exactly.
class JaccardJoinBlocker : public Blocker {
 public:
  JaccardJoinBlocker(OverlapBlockerOptions options, double threshold,
                     std::shared_ptr<Tokenizer> tokenizer = nullptr);

  using Blocker::Block;
  Result<CandidateSet> Block(const Table& left, const Table& right,
                             const ExecutorContext& ctx) const override;

  // As Block, but also reports filter selectivity (per-chunk counts are
  // accumulated into `stats`, which may not be null) — used by the
  // ablation bench and the filter-lossless property test.
  Result<CandidateSet> BlockWithStats(const Table& left, const Table& right,
                                      BlockStats* stats,
                                      const ExecutorContext& ctx = {}) const;

  std::string name() const override;

  void set_prep_cache(std::shared_ptr<PrepCache> cache) override {
    prep_cache_ = std::move(cache);
  }

 private:
  OverlapBlockerOptions options_;
  double threshold_;
  std::shared_ptr<Tokenizer> tokenizer_;
  std::shared_ptr<PrepCache> prep_cache_;  // optional, workflow-scoped
};

// Sorted-neighborhood blocker: sort both tables by a key expression and
// slide a window of size `window` over the merged order; records from
// opposite tables within a window become candidates. The classic
// alternative blocking family (surveyed in [7] of the paper).
class SortedNeighborhoodBlocker : public Blocker {
 public:
  SortedNeighborhoodBlocker(std::string left_attr, std::string right_attr,
                            size_t window, bool lowercase = true);

  using Blocker::Block;
  Result<CandidateSet> Block(const Table& left, const Table& right,
                             const ExecutorContext& ctx) const override;

  std::string name() const override {
    return "sorted_neighborhood(" + left_attr_ + ",w=" +
           std::to_string(window_) + ")";
  }

 private:
  std::string left_attr_;
  std::string right_attr_;
  size_t window_;
  bool lowercase_;
};

}  // namespace emx

#endif  // EMX_BLOCK_SIMILARITY_JOIN_H_
