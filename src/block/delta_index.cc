#include "src/block/delta_index.h"

namespace emx {

uint32_t DeltaTokenIndex::Add(IdSpan sorted_ids) {
  uint32_t record = static_cast<uint32_t>(rows());
  arena_.insert(arena_.end(), sorted_ids.begin(), sorted_ids.end());
  offsets_.push_back(arena_.size());
  live_.push_back(1);
  ++live_rows_;
  for (uint32_t id : sorted_ids) {
    if (id >= delta_.size()) delta_.resize(id + 1);
    delta_[id].push_back(record);
  }
  delta_postings_ += sorted_ids.size;
  MaybeCompact();
  return record;
}

void DeltaTokenIndex::Remove(uint32_t record) {
  if (record >= rows() || live_[record] == 0) return;
  live_[record] = 0;
  --live_rows_;
  // Whether the record's postings sit in the snapshot or in a delta list,
  // they are now dead weight the next compaction reclaims.
  dead_postings_ += offsets_[record + 1] - offsets_[record];
  MaybeCompact();
}

void DeltaTokenIndex::Compact() {
  // Largest token id across live records bounds the new CSR width.
  uint32_t tokens = 0;
  for (uint32_t r = 0; r < rows(); ++r) {
    if (!live_[r]) continue;
    for (uint32_t id : record_ids(r)) tokens = std::max(tokens, id + 1);
  }
  csr_tokens_ = tokens;
  csr_offsets_.assign(tokens + 1, 0);
  for (uint32_t r = 0; r < rows(); ++r) {
    if (!live_[r]) continue;
    for (uint32_t id : record_ids(r)) ++csr_offsets_[id + 1];
  }
  for (uint32_t t = 0; t < tokens; ++t) csr_offsets_[t + 1] += csr_offsets_[t];
  csr_postings_.resize(csr_offsets_[tokens]);
  std::vector<uint64_t> cursor(csr_offsets_.begin(), csr_offsets_.end() - 1);
  for (uint32_t r = 0; r < rows(); ++r) {
    if (!live_[r]) continue;
    for (uint32_t id : record_ids(r)) csr_postings_[cursor[id]++] = r;
  }
  snapshot_rows_ = rows();
  delta_.clear();
  delta_postings_ = 0;
  dead_postings_ = 0;
  ++compactions_;
}

void DeltaTokenIndex::MaybeCompact() {
  if (compact_threshold_ == 0) return;
  if (delta_postings_ + dead_postings_ > compact_threshold_) Compact();
}

}  // namespace emx
