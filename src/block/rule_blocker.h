#ifndef EMX_BLOCK_RULE_BLOCKER_H_
#define EMX_BLOCK_RULE_BLOCKER_H_

#include <functional>
#include <string>

#include "src/block/blocker.h"

namespace emx {

// Black-box blocker: a pair survives iff the user predicate returns true.
// Evaluated over the full Cartesian product, so use it for rules too
// irregular for the indexed blockers (or on small tables). PyMatcher's
// "rule-based blocker" and "black-box blocker" collapse to this in C++,
// where the rule is simply a callable.
class RuleBlocker : public Blocker {
 public:
  using Predicate = std::function<bool(const Table& left, size_t left_row,
                                       const Table& right, size_t right_row)>;

  RuleBlocker(std::string rule_name, Predicate keep);

  // The predicate must be safe to call concurrently: left rows are
  // evaluated in parallel chunks against the full right table.
  using Blocker::Block;
  Result<CandidateSet> Block(const Table& left, const Table& right,
                             const ExecutorContext& ctx) const override;

  std::string name() const override { return "rule(" + rule_name_ + ")"; }

 private:
  std::string rule_name_;
  Predicate keep_;
};

}  // namespace emx

#endif  // EMX_BLOCK_RULE_BLOCKER_H_
