#ifndef EMX_BLOCK_BLOCKER_H_
#define EMX_BLOCK_BLOCKER_H_

#include <memory>
#include <string>

#include "src/block/candidate_set.h"
#include "src/core/executor.h"
#include "src/core/result.h"
#include "src/table/table.h"

namespace emx {

class PrepCache;

// A blocker consumes two tables and emits the candidate pairs that survive
// its heuristic (everything it drops is presumed a non-match). Workflows
// union the outputs of several blockers (paper §7).
//
// Blocking is the pipeline's first embarrassingly parallel loop: every
// implementation probes its index over left-table chunks on the executor
// supplied via `ctx`, with per-chunk outputs merged in chunk order so the
// candidate set is identical at any thread count.
class Blocker {
 public:
  virtual ~Blocker() = default;

  virtual Result<CandidateSet> Block(const Table& left, const Table& right,
                                     const ExecutorContext& ctx) const = 0;

  // Convenience overload: blocks on the shared default executor.
  // (Subclasses re-expose it with `using Blocker::Block;`.)
  Result<CandidateSet> Block(const Table& left, const Table& right) const {
    return Block(left, right, ExecutorContext{});
  }

  // Human-readable description for provenance/logging.
  virtual std::string name() const = 0;

  // Installs a shared prep cache so several blockers over the same
  // (attribute, tokenizer, normalization) reuse one tokenized-column pass
  // and one token-id universe. No-op for blockers that don't tokenize;
  // EmWorkflow wires its workflow-scoped cache into every added blocker.
  virtual void set_prep_cache(std::shared_ptr<PrepCache> /*cache*/) {}
};

// Single-table deduplication support (the "matching tuples within a single
// table" scenario of §2): runs `blocker` with the table on both sides and
// canonicalizes the output — self-pairs (i,i) are dropped and each
// unordered pair is kept once as (min, max).
Result<CandidateSet> BlockSelf(const Blocker& blocker, const Table& table,
                               const ExecutorContext& ctx = {});

}  // namespace emx

#endif  // EMX_BLOCK_BLOCKER_H_
