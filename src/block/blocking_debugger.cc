#include "src/block/blocking_debugger.h"

#include <algorithm>
#include <queue>

#include "src/core/strings.h"
#include "src/text/sequence_similarity.h"
#include "src/text/set_similarity.h"
#include "src/text/tokenizer.h"

namespace emx {

namespace {

struct RecordFeatures {
  std::string raw;
  std::vector<std::string> words;
  std::vector<std::string> qgrams;
};

std::vector<RecordFeatures> Precompute(const std::vector<Value>& col,
                                       bool lowercase) {
  WhitespaceTokenizer ws;
  QgramTokenizer qg(3);
  std::vector<RecordFeatures> out;
  out.reserve(col.size());
  for (const Value& v : col) {
    RecordFeatures f;
    if (!v.is_null()) {
      f.raw = v.AsString();
      if (lowercase) f.raw = AsciiToLower(f.raw);
      f.words = ws.Tokenize(f.raw);
      f.qgrams = qg.Tokenize(f.raw);
    }
    out.push_back(std::move(f));
  }
  return out;
}

double ScorePair(const RecordFeatures& a, const RecordFeatures& b) {
  if (a.raw.empty() || b.raw.empty()) return 0.0;
  double s = JaccardSimilarity(a.words, b.words) +
             JaccardSimilarity(a.qgrams, b.qgrams) +
             JaroWinklerSimilarity(a.raw, b.raw);
  return s / 3.0;
}

}  // namespace

Result<std::vector<DebuggerFinding>> DebugBlocking(
    const Table& left, const Table& right, const CandidateSet& candidates,
    const BlockingDebuggerOptions& options) {
  if (options.attrs.empty()) {
    return Status::InvalidArgument("DebugBlocking: no attributes configured");
  }
  std::vector<std::vector<RecordFeatures>> lfeat, rfeat;
  for (const auto& [la, ra] : options.attrs) {
    EMX_ASSIGN_OR_RETURN(const std::vector<Value>* lcol, left.ColumnByName(la));
    EMX_ASSIGN_OR_RETURN(const std::vector<Value>* rcol,
                         right.ColumnByName(ra));
    lfeat.push_back(Precompute(*lcol, options.lowercase));
    rfeat.push_back(Precompute(*rcol, options.lowercase));
  }

  // Min-heap of the best `top_k` findings seen so far.
  auto cmp = [](const DebuggerFinding& a, const DebuggerFinding& b) {
    return a.score > b.score;
  };
  std::priority_queue<DebuggerFinding, std::vector<DebuggerFinding>,
                      decltype(cmp)>
      heap(cmp);

  for (uint32_t l = 0; l < left.num_rows(); ++l) {
    for (uint32_t r = 0; r < right.num_rows(); ++r) {
      RecordPair p{l, r};
      if (candidates.Contains(p)) continue;
      double sum = 0.0;
      for (size_t a = 0; a < lfeat.size(); ++a) {
        sum += ScorePair(lfeat[a][l], rfeat[a][r]);
      }
      double score = sum / static_cast<double>(lfeat.size());
      if (heap.size() < options.top_k) {
        heap.push({p, score});
      } else if (score > heap.top().score) {
        heap.pop();
        heap.push({p, score});
      }
    }
  }

  std::vector<DebuggerFinding> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  std::reverse(out.begin(), out.end());  // descending by score
  return out;
}

}  // namespace emx
