#ifndef EMX_BLOCK_DELTA_INDEX_H_
#define EMX_BLOCK_DELTA_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/text/token_interner.h"

namespace emx {

// Mutable token inverted index for the resident MatchService: a CSR
// snapshot over the records live at the last compaction, plus per-token
// delta posting lists for records added since, plus a tombstone bitmap for
// deletes. Lookups probe snapshot + delta and filter tombstones at emit,
// so at EVERY compaction state a probe sees exactly the live record set —
// bit-identical to a from-scratch rebuild (the property the fuzz test in
// tests/delta_index_property_test.cc asserts after every op).
//
// Probe semantics match internal_block::OverlapJoinIds: posting lists are
// PER-OCCURRENCE (a record holding token t k times contributes k postings
// for t), and every occurrence of t in the query counts each posting, so
// the emitted overlap is sum_v mult_query(v) * mult_record(v). Keep
// predicates (overlap >= K, coefficient thresholds) layer on top exactly
// as they do over the batch CSR index.
//
// Record ids are dense, assigned by Add in arrival order, and stable for
// the index's lifetime — tombstoned ids are never reused, so candidate
// pairs referencing them stay meaningful across compactions.
//
// Thread-safety: Probe is const and takes caller-owned scratch, so any
// number of concurrent probes are safe against each other. Mutations
// (Add/Remove/Compact) require external exclusion against probes AND each
// other (MatchService holds a shared_mutex: lookups shared, ingest
// unique).
class DeltaTokenIndex {
 public:
  // Compaction folds deltas + tombstones back into the CSR snapshot when
  // delta_postings() + dead_postings() exceeds `compact_threshold` (checked
  // after each Add/Remove). 0 disables auto-compaction (manual Compact()
  // only — what the property test uses to hit every interleaving point).
  explicit DeltaTokenIndex(size_t compact_threshold = 4096)
      : compact_threshold_(compact_threshold) {}

  // Bulk-load idiom: build with threshold 0, Add every base record, call
  // Compact() once, then restore the serving threshold — avoids the
  // O(n²/threshold) re-compaction cascade a naive bulk Add would trigger.
  void set_compact_threshold(size_t t) { compact_threshold_ = t; }

  DeltaTokenIndex(const DeltaTokenIndex&) = delete;
  DeltaTokenIndex& operator=(const DeltaTokenIndex&) = delete;

  // Registers a record whose token ids are `sorted_ids` (sorted, duplicates
  // preserved — exactly PreparedColumn::ids form) and returns its id.
  uint32_t Add(IdSpan sorted_ids);

  // Tombstones a live record; its postings stop being emitted immediately
  // and are physically dropped at the next compaction. No-op if already
  // dead.
  void Remove(uint32_t record);

  // Rebuilds the CSR snapshot over the live record set and clears deltas
  // and tombstone debt. Probe results are unchanged by construction.
  void Compact();

  size_t rows() const { return offsets_.size() - 1; }
  size_t live_rows() const { return live_rows_; }
  bool live(uint32_t record) const { return live_[record] != 0; }
  IdSpan record_ids(uint32_t record) const {
    return {arena_.data() + offsets_[record],
            static_cast<uint32_t>(offsets_[record + 1] - offsets_[record])};
  }

  // Maintenance counters (bench_serve exports these; tests assert
  // compaction actually triggered).
  uint64_t delta_postings() const { return delta_postings_; }
  uint64_t dead_postings() const { return dead_postings_; }
  uint64_t compactions() const { return compactions_; }
  size_t snapshot_rows() const { return snapshot_rows_; }

  // Dense per-record overlap counters + touched list, owned by the prober
  // so concurrent Probes never share state. Reset cost is proportional to
  // records actually touched, not to corpus size.
  struct ProbeScratch {
    std::vector<uint32_t> counts;
    std::vector<uint32_t> touched;
    std::vector<uint32_t> probe;  // query ids, rare-token-first
  };

  // Calls emit(record, overlap) for every LIVE record sharing at least one
  // token occurrence with `query` (sorted ids, duplicates preserved), in
  // ascending record-id order. `overlap` is the per-occurrence multiset
  // overlap described above.
  template <typename Emit>
  void Probe(IdSpan query, ProbeScratch* scratch, Emit&& emit) const {
    scratch->counts.resize(rows(), 0);
    scratch->touched.clear();
    // Rare-token-first (by snapshot frequency): short posting lists fill
    // the touched-list before frequent tokens rescan mostly-warm slots.
    // Pure probe-order optimization — counts are order-invariant.
    scratch->probe.assign(query.begin(), query.end());
    std::sort(scratch->probe.begin(), scratch->probe.end(),
              [this](uint32_t a, uint32_t b) {
                uint64_t fa = SnapshotFrequency(a);
                uint64_t fb = SnapshotFrequency(b);
                if (fa != fb) return fa < fb;
                return a < b;
              });
    for (uint32_t id : scratch->probe) {
      if (id < csr_tokens_) {
        for (uint64_t p = csr_offsets_[id]; p < csr_offsets_[id + 1]; ++p) {
          uint32_t r = csr_postings_[p];
          if (scratch->counts[r]++ == 0) scratch->touched.push_back(r);
        }
      }
      if (id < delta_.size()) {
        for (uint32_t r : delta_[id]) {
          if (scratch->counts[r]++ == 0) scratch->touched.push_back(r);
        }
      }
    }
    // Ascending-id emit keeps downstream candidate lists deterministic
    // regardless of posting layout (snapshot vs delta) — part of the
    // rebuild-equivalence contract.
    std::sort(scratch->touched.begin(), scratch->touched.end());
    for (uint32_t r : scratch->touched) {
      uint32_t overlap = scratch->counts[r];
      scratch->counts[r] = 0;
      if (live_[r]) emit(r, overlap);
    }
  }

 private:
  uint64_t SnapshotFrequency(uint32_t id) const {
    if (id >= csr_tokens_) return 0;
    return csr_offsets_[id + 1] - csr_offsets_[id];
  }

  void MaybeCompact();

  size_t compact_threshold_;

  // All records ever added, id-indexed (tombstoned rows keep their ids).
  std::vector<uint32_t> arena_;     // flat sorted-id runs
  std::vector<uint64_t> offsets_ = {0};  // rows+1
  std::vector<uint8_t> live_;
  size_t live_rows_ = 0;

  // CSR snapshot: postings of records live at the last compaction (ids are
  // < snapshot_rows_; some may have died since — filtered at emit).
  size_t snapshot_rows_ = 0;
  uint32_t csr_tokens_ = 0;
  std::vector<uint64_t> csr_offsets_ = {0};
  std::vector<uint32_t> csr_postings_;

  // Per-token postings of records added after the snapshot, append-ordered
  // (record ids ascend within each list by construction).
  std::vector<std::vector<uint32_t>> delta_;

  uint64_t delta_postings_ = 0;
  uint64_t dead_postings_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace emx

#endif  // EMX_BLOCK_DELTA_INDEX_H_
