#ifndef EMX_BLOCK_BLOCKING_DEBUGGER_H_
#define EMX_BLOCK_BLOCKING_DEBUGGER_H_

#include <string>
#include <vector>

#include "src/block/candidate_set.h"
#include "src/core/result.h"
#include "src/table/table.h"

namespace emx {

// A pair excluded by blocking, with the debugger's match-likelihood score.
struct DebuggerFinding {
  RecordPair pair;
  double score;
};

struct BlockingDebuggerOptions {
  // Attribute pairs to compare; scores are averaged over them.
  std::vector<std::pair<std::string, std::string>> attrs;
  // How many top-scored excluded pairs to return.
  size_t top_k = 100;
  bool lowercase = true;
};

// MatchCatcher-style blocking debugger (paper §7 step 4, [23]): scans the
// pairs of A × B *not* in the candidate set, scores each with a cheap
// similarity ensemble (word Jaccard + 3-gram Jaccard + Jaro-Winkler over the
// configured attributes), and returns the `top_k` most match-like. If the
// user sees no true matches among them, blocking likely killed few matches.
//
// Token sets are precomputed per record, so the scan is O(|A|·|B|) cheap
// comparisons rather than O(|A|·|B|) string re-tokenizations.
Result<std::vector<DebuggerFinding>> DebugBlocking(
    const Table& left, const Table& right, const CandidateSet& candidates,
    const BlockingDebuggerOptions& options);

}  // namespace emx

#endif  // EMX_BLOCK_BLOCKING_DEBUGGER_H_
