#include "src/block/rule_blocker.h"

#include <utility>
#include <vector>

namespace emx {

RuleBlocker::RuleBlocker(std::string rule_name, Predicate keep)
    : rule_name_(std::move(rule_name)), keep_(std::move(keep)) {}

Result<CandidateSet> RuleBlocker::Block(const Table& left, const Table& right,
                                        const ExecutorContext& ctx) const {
  if (!keep_) return Status::InvalidArgument("RuleBlocker has no predicate");
  // The Cartesian product is the most parallel-hungry blocker of all:
  // split the left rows into chunks, each scanning the full right table.
  std::vector<RecordPair> pairs = ctx.get().ParallelFlatMap(
      left.num_rows(), /*grain=*/0,
      [&](size_t lo, size_t hi) {
        std::vector<RecordPair> out;
        for (size_t l = lo; l < hi; ++l) {
          for (size_t r = 0; r < right.num_rows(); ++r) {
            if (keep_(left, l, right, r)) {
              out.push_back(
                  {static_cast<uint32_t>(l), static_cast<uint32_t>(r)});
            }
          }
        }
        return out;
      });
  return CandidateSet(std::move(pairs));
}

}  // namespace emx
