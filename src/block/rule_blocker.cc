#include "src/block/rule_blocker.h"

#include <utility>
#include <vector>

namespace emx {

RuleBlocker::RuleBlocker(std::string rule_name, Predicate keep)
    : rule_name_(std::move(rule_name)), keep_(std::move(keep)) {}

Result<CandidateSet> RuleBlocker::Block(const Table& left,
                                        const Table& right) const {
  if (!keep_) return Status::InvalidArgument("RuleBlocker has no predicate");
  std::vector<RecordPair> pairs;
  for (size_t l = 0; l < left.num_rows(); ++l) {
    for (size_t r = 0; r < right.num_rows(); ++r) {
      if (keep_(left, l, right, r)) {
        pairs.push_back(
            {static_cast<uint32_t>(l), static_cast<uint32_t>(r)});
      }
    }
  }
  return CandidateSet(std::move(pairs));
}

}  // namespace emx
