#include "src/block/attr_equivalence_blocker.h"

#include <unordered_map>
#include <vector>

namespace emx {

AttrEquivalenceBlocker::AttrEquivalenceBlocker(std::string left_attr,
                                               std::string right_attr,
                                               Transform left_transform,
                                               Transform right_transform)
    : left_attr_(std::move(left_attr)),
      right_attr_(std::move(right_attr)),
      left_transform_(std::move(left_transform)),
      right_transform_(std::move(right_transform)) {}

Result<CandidateSet> AttrEquivalenceBlocker::Block(
    const Table& left, const Table& right, const ExecutorContext& ctx) const {
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* lcol,
                       left.ColumnByName(left_attr_));
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* rcol,
                       right.ColumnByName(right_attr_));

  // Hash-partition the right side by key, then probe with left-side chunks
  // in parallel (the index is read-only while probing).
  std::unordered_multimap<std::string, uint32_t> index;
  index.reserve(rcol->size() * 2);
  for (size_t r = 0; r < rcol->size(); ++r) {
    const Value& v = (*rcol)[r];
    if (v.is_null()) continue;
    std::string key = v.AsString();
    if (right_transform_) key = right_transform_(key);
    if (key.empty()) continue;
    index.emplace(std::move(key), static_cast<uint32_t>(r));
  }

  std::vector<RecordPair> pairs = ctx.get().ParallelFlatMap(
      lcol->size(), /*grain=*/0,
      [&](size_t lo_row, size_t hi_row) {
        std::vector<RecordPair> out;
        for (size_t l = lo_row; l < hi_row; ++l) {
          const Value& v = (*lcol)[l];
          if (v.is_null()) continue;
          std::string key = v.AsString();
          if (left_transform_) key = left_transform_(key);
          if (key.empty()) continue;
          auto [lo, hi] = index.equal_range(key);
          for (auto it = lo; it != hi; ++it) {
            out.push_back({static_cast<uint32_t>(l), it->second});
          }
        }
        return out;
      });
  return CandidateSet(std::move(pairs));
}

}  // namespace emx
