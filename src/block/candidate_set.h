#ifndef EMX_BLOCK_CANDIDATE_SET_H_
#define EMX_BLOCK_CANDIDATE_SET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/result.h"
#include "src/core/status.h"

namespace emx {

// A pair of row indices (left table row, right table row).
struct RecordPair {
  uint32_t left;
  uint32_t right;

  friend bool operator==(const RecordPair& a, const RecordPair& b) {
    return a.left == b.left && a.right == b.right;
  }
  friend bool operator<(const RecordPair& a, const RecordPair& b) {
    if (a.left != b.left) return a.left < b.left;
    return a.right < b.right;
  }
};

// The output of blocking: a deduplicated, sorted set of candidate record
// pairs supporting the set algebra the paper's workflows need (C1 ∪ C2 ∪ C3,
// C2 − C1, |C2 ∩ C3|, ...).
class CandidateSet {
 public:
  CandidateSet() = default;

  // Builds from arbitrary pairs; sorts and deduplicates.
  explicit CandidateSet(std::vector<RecordPair> pairs);

  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }
  const std::vector<RecordPair>& pairs() const { return pairs_; }
  const RecordPair& operator[](size_t i) const { return pairs_[i]; }

  // Binary search membership test.
  bool Contains(const RecordPair& p) const;

  // Set algebra; all O(|a| + |b|).
  static CandidateSet Union(const CandidateSet& a, const CandidateSet& b);
  static CandidateSet Minus(const CandidateSet& a, const CandidateSet& b);
  static CandidateSet Intersect(const CandidateSet& a, const CandidateSet& b);

  // Variadic union convenience.
  static CandidateSet UnionAll(const std::vector<const CandidateSet*>& sets);

  // Copy with `left_offset` added to every left index — used to place two
  // branches (e.g. original and extra left tables against the same right
  // table) into one disjoint evaluation universe.
  CandidateSet WithLeftOffset(uint32_t left_offset) const;

  bool operator==(const CandidateSet& other) const {
    return pairs_ == other.pairs_;
  }

  auto begin() const { return pairs_.begin(); }
  auto end() const { return pairs_.end(); }

 private:
  std::vector<RecordPair> pairs_;  // sorted, unique
};

// Versioned text round-trip used by the checkpoint store:
//   emx-candidates v1
//   <pair count>
//   <left> <right>        (one line per pair, in set order)
std::string SerializeCandidateSet(const CandidateSet& set);

// ParseError (with line detail) on a bad header, malformed pair line, or a
// count that disagrees with the lines present.
Result<CandidateSet> DeserializeCandidateSet(const std::string& text);

}  // namespace emx

#endif  // EMX_BLOCK_CANDIDATE_SET_H_
