#include "src/block/partitioned_blocker.h"

#include <algorithm>
#include <chrono>

#include "src/core/logging.h"
#include "src/core/strings.h"

namespace emx {
namespace internal_block {

namespace {

// Working-set model, mirrored in DESIGN.md §11:
//   fixed per partition:  offsets (8B * (distinct_ids + 1))
//                         + build cursors (8B * distinct_ids, transient)
//   per partitioned row:  postings (4B * avg tokens/row)
//                         + probe counts (4B) + touched list (4B)
size_t FixedPartitionBytes(size_t distinct_ids) {
  return 16 * distinct_ids + 8;
}

size_t PerRowBytes(size_t right_rows, size_t token_occurrences) {
  size_t avg_tokens =
      right_rows == 0 ? 0 : (token_occurrences + right_rows - 1) / right_rows;
  return 4 * avg_tokens + 8;
}

}  // namespace

PartitionPlan PlanPartitions(size_t right_rows, size_t token_occurrences,
                             size_t distinct_ids, const BlockBudget& budget) {
  PartitionPlan plan;
  plan.rows_per_partition = std::max<size_t>(1, right_rows);
  plan.num_partitions = 1;
  size_t per_row = PerRowBytes(right_rows, token_occurrences);
  plan.estimated_partition_bytes =
      FixedPartitionBytes(distinct_ids) + right_rows * per_row;
  if (budget.mem_budget_bytes == 0 || right_rows == 0 ||
      plan.estimated_partition_bytes <= budget.mem_budget_bytes) {
    return plan;
  }
  size_t fixed = FixedPartitionBytes(distinct_ids);
  size_t min_rows = std::max<size_t>(1, budget.min_partition_rows);
  size_t rows;
  if (budget.mem_budget_bytes <= fixed) {
    // The id-space offset array alone exceeds the budget; partitioning
    // can't shrink it (ids are global), so degrade to the floor.
    EMX_LOG(Warning) << "block budget " << budget.mem_budget_bytes
                     << "B is below the fixed index cost (" << fixed
                     << "B for " << distinct_ids
                     << " token ids); using min_partition_rows";
    rows = min_rows;
  } else {
    rows = std::max(min_rows, (budget.mem_budget_bytes - fixed) / per_row);
  }
  rows = std::min(rows, right_rows);
  plan.rows_per_partition = rows;
  plan.num_partitions = (right_rows + rows - 1) / rows;
  plan.estimated_partition_bytes = fixed + rows * per_row;
  return plan;
}

RangeIdIndex::RangeIdIndex(const PreparedColumn& right, size_t row_begin,
                           size_t row_end) {
  uint32_t num_ids = 0;
  for (size_t r = row_begin; r < row_end; ++r) {
    IdSpan s = right.ids(r);
    // Spans are sorted, so the last element is the row maximum.
    if (s.size > 0) num_ids = std::max(num_ids, s.data[s.size - 1] + 1);
  }
  offsets_.assign(num_ids + 1, 0);
  for (size_t r = row_begin; r < row_end; ++r) {
    for (uint32_t id : right.ids(r)) ++offsets_[id + 1];
  }
  for (size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  postings_.resize(offsets_.back());
  std::vector<uint64_t> fill(offsets_.begin(), offsets_.end() - 1);
  for (size_t r = row_begin; r < row_end; ++r) {
    for (uint32_t id : right.ids(r)) {
      postings_[fill[id]++] = static_cast<uint32_t>(r - row_begin);
    }
  }
}

CandidateSet PartitionedOverlapJoin(const PreparedColumn& left,
                                    const PreparedColumn& right,
                                    const OverlapKeepFn& keep,
                                    size_t min_left_tokens,
                                    const BlockBudget& budget,
                                    const ExecutorContext& ctx,
                                    PartitionedJoinStats* stats) {
  size_t total_tokens = 0;
  for (size_t r = 0; r < right.rows(); ++r) total_tokens += right.ids(r).size;
  uint32_t distinct = 0;
  for (size_t r = 0; r < right.rows(); ++r) {
    IdSpan s = right.ids(r);
    if (s.size > 0) distinct = std::max(distinct, s.data[s.size - 1] + 1);
  }
  PartitionPlan plan =
      PlanPartitions(right.rows(), total_tokens, distinct, budget);
  if (stats != nullptr) {
    stats->num_partitions = plan.num_partitions;
    stats->partition_ms.clear();
    stats->peak_index_bytes = 0;
  }
  const bool loud = left.rows() >= 100000 || right.rows() >= 100000;
  auto run_start = std::chrono::steady_clock::now();

  std::vector<RecordPair> all;
  for (size_t p = 0; p < plan.num_partitions; ++p) {
    auto part_start = std::chrono::steady_clock::now();
    size_t lo = p * plan.rows_per_partition;
    size_t hi = std::min(right.rows(), lo + plan.rows_per_partition);
    RangeIdIndex index(right, lo, hi);
    size_t part_rows = hi - lo;
    std::vector<RecordPair> pairs = ctx.get().ParallelFlatMap(
        left.rows(), /*grain=*/0,
        [&](size_t chunk_lo, size_t chunk_hi) {
          std::vector<RecordPair> out;
          std::vector<uint32_t> counts(part_rows, 0);
          std::vector<uint32_t> touched;
          std::vector<uint32_t> probe;
          for (size_t l = chunk_lo; l < chunk_hi; ++l) {
            IdSpan ids = left.ids(l);
            // Length pruning: overlap can never exceed the left token
            // count, so rows below the keep threshold skip the index
            // entirely (bit-identical — they could only emit pairs that
            // `keep` rejects).
            if (ids.size < min_left_tokens) continue;
            probe.assign(ids.begin(), ids.end());
            // Rare tokens first: short postings fill the touched-list
            // before frequent tokens rescan mostly-warm slots.
            std::sort(probe.begin(), probe.end(),
                      [&index](uint32_t a, uint32_t b) {
                        uint64_t fa = index.frequency(a);
                        uint64_t fb = index.frequency(b);
                        if (fa != fb) return fa < fb;
                        return a < b;
                      });
            const auto& offsets = index.offsets();
            const auto& postings = index.postings();
            for (uint32_t id : probe) {
              if (id >= index.num_ids()) continue;
              for (uint64_t i = offsets[id]; i < offsets[id + 1]; ++i) {
                uint32_t r = postings[i];
                if (counts[r]++ == 0) touched.push_back(r);
              }
            }
            for (uint32_t r : touched) {
              if (keep(ids.size, right.ids(lo + r).size, counts[r])) {
                out.push_back({static_cast<uint32_t>(l),
                               static_cast<uint32_t>(lo + r)});
              }
              counts[r] = 0;
            }
            touched.clear();
          }
          return out;
        });
    all.insert(all.end(), pairs.begin(), pairs.end());
    double part_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - part_start)
                         .count();
    if (stats != nullptr) {
      stats->partition_ms.push_back(part_ms);
      stats->peak_index_bytes =
          std::max(stats->peak_index_bytes, index.bytes());
    }
    if (plan.num_partitions > 1) {
      double secs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - run_start)
                        .count();
      double rate = secs > 0 ? static_cast<double>((p + 1) * left.rows()) /
                                   secs
                             : 0;
      if (loud) {
        EMX_LOG(Info) << "blocking: partition " << (p + 1) << "/"
                      << plan.num_partitions << " done ("
                      << StrFormat("%.0f", rate) << " probe records/s, "
                      << all.size() << " candidates so far)";
      } else {
        EMX_LOG(Debug) << "blocking: partition " << (p + 1) << "/"
                       << plan.num_partitions << " done (" << all.size()
                       << " candidates so far)";
      }
    }
  }
  return CandidateSet(std::move(all));
}

}  // namespace internal_block
}  // namespace emx
