#include "src/block/similarity_join.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "src/block/partitioned_blocker.h"
#include "src/core/logging.h"
#include "src/core/strings.h"
#include "src/text/set_similarity.h"

namespace emx {

JaccardJoinBlocker::JaccardJoinBlocker(OverlapBlockerOptions options,
                                       double threshold,
                                       std::shared_ptr<Tokenizer> tokenizer)
    : options_(std::move(options)),
      threshold_(threshold),
      tokenizer_(tokenizer ? std::move(tokenizer)
                           : std::make_shared<WhitespaceTokenizer>()) {}

Result<CandidateSet> JaccardJoinBlocker::Block(const Table& left,
                                               const Table& right,
                                               const ExecutorContext& ctx) const {
  BlockStats stats;
  return BlockWithStats(left, right, &stats, ctx);
}

Result<CandidateSet> JaccardJoinBlocker::BlockWithStats(
    const Table& left, const Table& right, BlockStats* stats,
    const ExecutorContext& ctx) const {
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* lcol,
                       left.ColumnByName(options_.left_attr));
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* rcol,
                       right.ColumnByName(options_.right_attr));
  // Prep both columns once into id spans over a shared interner (the
  // workflow cache when installed, else a call-local one — kept alive here
  // because the token-string snapshot below views into its interner).
  std::shared_ptr<PrepCache> cache =
      prep_cache_ ? prep_cache_ : std::make_shared<PrepCache>();
  PrepOptions prep = internal_block::ToPrepOptions(options_);
  auto lp = cache->Get(*lcol, prep, tokenizer_.get());
  auto rp = cache->Get(*rcol, prep, tokenizer_.get());
  std::vector<std::string_view> token_strings = cache->TokenStringsSnapshot();

  // Global token frequency over both sides; prefixes are ordered
  // rarest-first so they discriminate maximally. Ties break on the token
  // STRING (not the scheduling-dependent id), reproducing the legacy
  // global order exactly — prefix sets, and therefore the verified-pair
  // count, are identical to the string-path implementation.
  std::vector<size_t> freq(token_strings.size(), 0);
  for (size_t l = 0; l < lp->rows(); ++l) {
    for (uint32_t id : lp->ids(l)) ++freq[id];
  }
  for (size_t r = 0; r < rp->rows(); ++r) {
    for (uint32_t id : rp->ids(r)) ++freq[id];
  }
  auto ordered_ids = [&](const PreparedColumn& col) {
    std::vector<std::vector<uint32_t>> out(col.rows());
    for (size_t i = 0; i < col.rows(); ++i) {
      IdSpan s = col.ids(i);
      out[i].assign(s.begin(), s.end());
      std::sort(out[i].begin(), out[i].end(),
                [&](uint32_t a, uint32_t b) {
                  if (freq[a] != freq[b]) return freq[a] < freq[b];
                  return token_strings[a] < token_strings[b];
                });
    }
    return out;
  };
  std::vector<std::vector<uint32_t>> lt = ordered_ids(*lp);
  std::vector<std::vector<uint32_t>> rt = ordered_ids(*rp);

  // Prefix length for jaccard t and set size s: s - ceil(t*s) + 1.
  auto prefix_len = [this](size_t s) -> size_t {
    if (s == 0) return 0;
    size_t need = static_cast<size_t>(
        std::ceil(threshold_ * static_cast<double>(s)));
    return s - need + 1;
  };

  // Partition the right side so one partition's prefix index plus the
  // per-chunk seen/touched scratch stays inside the options' memory budget
  // (0 = one partition, the monolithic layout). Membership of a pair
  // depends only on its two records, so the candidate set AND the verified
  // count are bit-identical at every budget and thread count.
  size_t num_right = rp->rows();
  size_t prefix_postings = 0;
  for (size_t r = 0; r < rt.size(); ++r) prefix_postings += prefix_len(rt[r].size());
  internal_block::BlockBudget budget;
  budget.mem_budget_bytes = options_.mem_budget_bytes;
  internal_block::PartitionPlan plan = internal_block::PlanPartitions(
      num_right, prefix_postings, token_strings.size(), budget);

  std::atomic<size_t> verified{0};
  const bool loud = lt.size() >= 100000 || num_right >= 100000;
  std::vector<RecordPair> out;
  for (size_t part = 0; part < plan.num_partitions; ++part) {
    size_t part_lo = part * plan.rows_per_partition;
    size_t part_hi = std::min(num_right, part_lo + plan.rows_per_partition);
    size_t part_rows = part_hi - part_lo;
    // Prefix index over this partition (dense by id; LOCAL postings in r
    // order).
    std::vector<std::vector<uint32_t>> index(token_strings.size());
    for (size_t r = part_lo; r < part_hi; ++r) {
      size_t p = prefix_len(rt[r].size());
      for (size_t i = 0; i < p; ++i) {
        index[rt[r][i]].push_back(static_cast<uint32_t>(r - part_lo));
      }
    }

    // Probe with left prefixes in parallel chunks; verify candidates
    // exactly with the allocation-free merge kernel over the id-sorted
    // spans. The per-left-record `seen` hash set becomes a dense stamp
    // array (partition-sized) with a touched-list reset. Each chunk counts
    // its own verifications; the per-chunk counts sum into `stats` after
    // the merge, so the total is thread-count independent.
    std::vector<RecordPair> pairs = ctx.get().ParallelFlatMap(
        lt.size(), /*grain=*/0,
        [&](size_t lo, size_t hi) {
          std::vector<RecordPair> chunk;
          std::vector<uint8_t> seen(part_rows, 0);
          std::vector<uint32_t> touched;
          size_t chunk_verified = 0;
          for (size_t l = lo; l < hi; ++l) {
            size_t p = prefix_len(lt[l].size());
            for (size_t i = 0; i < p; ++i) {
              for (uint32_t local : index[lt[l][i]]) {
                if (seen[local]) continue;
                seen[local] = 1;
                touched.push_back(local);
                uint32_t r = static_cast<uint32_t>(part_lo + local);
                // Size filter: |x|·t <= |y| <= |x|/t is necessary for
                // jaccard >= t.
                double ls = static_cast<double>(lt[l].size());
                double rs = static_cast<double>(rt[r].size());
                if (rs < ls * threshold_ || rs > ls / threshold_) continue;
                ++chunk_verified;
                if (JaccardSimilarity(lp->ids(l), rp->ids(r)) >= threshold_) {
                  chunk.push_back({static_cast<uint32_t>(l), r});
                }
              }
            }
            for (uint32_t local : touched) seen[local] = 0;
            touched.clear();
          }
          verified.fetch_add(chunk_verified, std::memory_order_relaxed);
          return chunk;
        });
    out.insert(out.end(), pairs.begin(), pairs.end());
    if (plan.num_partitions > 1) {
      if (loud) {
        EMX_LOG(Info) << "jaccard_join: partition " << (part + 1) << "/"
                      << plan.num_partitions << " done (" << out.size()
                      << " candidates so far)";
      } else {
        EMX_LOG(Debug) << "jaccard_join: partition " << (part + 1) << "/"
                       << plan.num_partitions << " done";
      }
    }
  }
  stats->verified += verified.load();
  return CandidateSet(std::move(out));
}

std::string JaccardJoinBlocker::name() const {
  return StrFormat("jaccard_join(%s,t=%.2f)", options_.left_attr.c_str(),
                   threshold_);
}

SortedNeighborhoodBlocker::SortedNeighborhoodBlocker(std::string left_attr,
                                                     std::string right_attr,
                                                     size_t window,
                                                     bool lowercase)
    : left_attr_(std::move(left_attr)),
      right_attr_(std::move(right_attr)),
      window_(window == 0 ? 1 : window),
      lowercase_(lowercase) {}

Result<CandidateSet> SortedNeighborhoodBlocker::Block(
    const Table& left, const Table& right,
    const ExecutorContext& /*ctx*/) const {
  // Window sliding over one global sort order is inherently sequential;
  // this blocker runs on the calling thread regardless of executor.
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* lcol,
                       left.ColumnByName(left_attr_));
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* rcol,
                       right.ColumnByName(right_attr_));

  struct Entry {
    std::string key;
    uint32_t row;
    bool from_left;
  };
  std::vector<Entry> merged;
  merged.reserve(lcol->size() + rcol->size());
  auto add = [&](const std::vector<Value>& col, bool from_left) {
    for (size_t i = 0; i < col.size(); ++i) {
      if (col[i].is_null()) continue;
      std::string key = col[i].AsString();
      if (lowercase_) key = AsciiToLower(key);
      merged.push_back({std::move(key), static_cast<uint32_t>(i), from_left});
    }
  };
  add(*lcol, true);
  add(*rcol, false);
  std::sort(merged.begin(), merged.end(), [](const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    if (a.from_left != b.from_left) return a.from_left;
    return a.row < b.row;
  });

  std::vector<RecordPair> out;
  for (size_t i = 0; i < merged.size(); ++i) {
    size_t hi = std::min(merged.size(), i + window_);
    for (size_t j = i + 1; j < hi; ++j) {
      if (merged[i].from_left == merged[j].from_left) continue;
      const Entry& l = merged[i].from_left ? merged[i] : merged[j];
      const Entry& r = merged[i].from_left ? merged[j] : merged[i];
      out.push_back({l.row, r.row});
    }
  }
  return CandidateSet(std::move(out));
}

}  // namespace emx
