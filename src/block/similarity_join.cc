#include "src/block/similarity_join.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "src/core/strings.h"
#include "src/text/set_similarity.h"

namespace emx {

JaccardJoinBlocker::JaccardJoinBlocker(OverlapBlockerOptions options,
                                       double threshold,
                                       std::shared_ptr<Tokenizer> tokenizer)
    : options_(std::move(options)),
      threshold_(threshold),
      tokenizer_(tokenizer ? std::move(tokenizer)
                           : std::make_shared<WhitespaceTokenizer>()) {}

Result<CandidateSet> JaccardJoinBlocker::Block(const Table& left,
                                               const Table& right,
                                               const ExecutorContext& ctx) const {
  BlockStats stats;
  return BlockWithStats(left, right, &stats, ctx);
}

Result<CandidateSet> JaccardJoinBlocker::BlockWithStats(
    const Table& left, const Table& right, BlockStats* stats,
    const ExecutorContext& ctx) const {
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* lcol,
                       left.ColumnByName(options_.left_attr));
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* rcol,
                       right.ColumnByName(options_.right_attr));
  auto lt = internal_block::TokenizeColumn(*lcol, options_, *tokenizer_);
  auto rt = internal_block::TokenizeColumn(*rcol, options_, *tokenizer_);

  // Global token frequency over both sides; prefixes are ordered
  // rarest-first so they discriminate maximally.
  std::unordered_map<std::string, size_t> freq;
  for (const auto& tokens : lt) {
    for (const auto& t : tokens) ++freq[t];
  }
  for (const auto& tokens : rt) {
    for (const auto& t : tokens) ++freq[t];
  }
  auto order_tokens = [&freq](std::vector<std::string>& tokens) {
    std::sort(tokens.begin(), tokens.end(),
              [&freq](const std::string& a, const std::string& b) {
                size_t fa = freq[a], fb = freq[b];
                if (fa != fb) return fa < fb;
                return a < b;
              });
  };
  for (auto& tokens : lt) order_tokens(tokens);
  for (auto& tokens : rt) order_tokens(tokens);

  // Prefix length for jaccard t and set size s: s - ceil(t*s) + 1.
  auto prefix_len = [this](size_t s) -> size_t {
    if (s == 0) return 0;
    size_t need = static_cast<size_t>(
        std::ceil(threshold_ * static_cast<double>(s)));
    return s - need + 1;
  };

  // Index the right side's prefixes.
  std::unordered_map<std::string, std::vector<uint32_t>> index;
  for (size_t r = 0; r < rt.size(); ++r) {
    size_t p = prefix_len(rt[r].size());
    for (size_t i = 0; i < p; ++i) {
      index[rt[r][i]].push_back(static_cast<uint32_t>(r));
    }
  }

  // Probe with left prefixes in parallel chunks; verify candidates
  // exactly. Each chunk counts its own verifications; the per-chunk counts
  // sum into `stats` after the merge, so the total is thread-count
  // independent.
  std::atomic<size_t> verified{0};
  std::vector<RecordPair> out = ctx.get().ParallelFlatMap(
      lt.size(), /*grain=*/0,
      [&](size_t lo, size_t hi) {
        std::vector<RecordPair> chunk;
        std::unordered_set<uint32_t> seen;
        size_t chunk_verified = 0;
        for (size_t l = lo; l < hi; ++l) {
          seen.clear();
          size_t p = prefix_len(lt[l].size());
          for (size_t i = 0; i < p; ++i) {
            auto it = index.find(lt[l][i]);
            if (it == index.end()) continue;
            for (uint32_t r : it->second) {
              if (!seen.insert(r).second) continue;
              // Size filter: |x|·t <= |y| <= |x|/t is necessary for
              // jaccard >= t.
              double ls = static_cast<double>(lt[l].size());
              double rs = static_cast<double>(rt[r].size());
              if (rs < ls * threshold_ || rs > ls / threshold_) continue;
              ++chunk_verified;
              if (JaccardSimilarity(lt[l], rt[r]) >= threshold_) {
                chunk.push_back({static_cast<uint32_t>(l), r});
              }
            }
          }
        }
        verified.fetch_add(chunk_verified, std::memory_order_relaxed);
        return chunk;
      });
  stats->verified += verified.load();
  return CandidateSet(std::move(out));
}

std::string JaccardJoinBlocker::name() const {
  return StrFormat("jaccard_join(%s,t=%.2f)", options_.left_attr.c_str(),
                   threshold_);
}

SortedNeighborhoodBlocker::SortedNeighborhoodBlocker(std::string left_attr,
                                                     std::string right_attr,
                                                     size_t window,
                                                     bool lowercase)
    : left_attr_(std::move(left_attr)),
      right_attr_(std::move(right_attr)),
      window_(window == 0 ? 1 : window),
      lowercase_(lowercase) {}

Result<CandidateSet> SortedNeighborhoodBlocker::Block(
    const Table& left, const Table& right,
    const ExecutorContext& /*ctx*/) const {
  // Window sliding over one global sort order is inherently sequential;
  // this blocker runs on the calling thread regardless of executor.
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* lcol,
                       left.ColumnByName(left_attr_));
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* rcol,
                       right.ColumnByName(right_attr_));

  struct Entry {
    std::string key;
    uint32_t row;
    bool from_left;
  };
  std::vector<Entry> merged;
  merged.reserve(lcol->size() + rcol->size());
  auto add = [&](const std::vector<Value>& col, bool from_left) {
    for (size_t i = 0; i < col.size(); ++i) {
      if (col[i].is_null()) continue;
      std::string key = col[i].AsString();
      if (lowercase_) key = AsciiToLower(key);
      merged.push_back({std::move(key), static_cast<uint32_t>(i), from_left});
    }
  };
  add(*lcol, true);
  add(*rcol, false);
  std::sort(merged.begin(), merged.end(), [](const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    if (a.from_left != b.from_left) return a.from_left;
    return a.row < b.row;
  });

  std::vector<RecordPair> out;
  for (size_t i = 0; i < merged.size(); ++i) {
    size_t hi = std::min(merged.size(), i + window_);
    for (size_t j = i + 1; j < hi; ++j) {
      if (merged[i].from_left == merged[j].from_left) continue;
      const Entry& l = merged[i].from_left ? merged[i] : merged[j];
      const Entry& r = merged[i].from_left ? merged[j] : merged[i];
      out.push_back({l.row, r.row});
    }
  }
  return CandidateSet(std::move(out));
}

}  // namespace emx
