#include "src/labeling/label_debugger.h"

#include "src/ml/cross_validation.h"

namespace emx {

Result<std::vector<LabelDiscrepancy>> DebugLabels(
    const std::vector<LabeledPair>& pairs,
    const std::vector<std::vector<double>>& feature_rows,
    const MatcherFactory& factory) {
  if (pairs.size() != feature_rows.size()) {
    return Status::InvalidArgument(
        "DebugLabels: pairs and feature rows misaligned");
  }
  Dataset data;
  std::vector<size_t> kept;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (pairs[i].label == Label::kUnsure) continue;
    data.x.push_back(feature_rows[i]);
    data.y.push_back(pairs[i].label == Label::kYes ? 1 : 0);
    kept.push_back(i);
  }
  if (data.size() < 2) {
    return Status::InvalidArgument("DebugLabels: not enough decided labels");
  }
  EMX_ASSIGN_OR_RETURN(std::vector<int> loo,
                       LeaveOneOutPredictions(factory, data));
  std::vector<LabelDiscrepancy> out;
  for (size_t i = 0; i < kept.size(); ++i) {
    int given = data.y[i];
    if (loo[i] != given) {
      out.push_back({pairs[kept[i]].pair,
                     given == 1 ? Label::kYes : Label::kNo,
                     loo[i] == 1 ? Label::kYes : Label::kNo});
    }
  }
  return out;
}

}  // namespace emx
