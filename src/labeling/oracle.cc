#include "src/labeling/oracle.h"

namespace emx {

OracleLabeler::OracleLabeler(CandidateSet gold_matches, CandidateSet ambiguous,
                             OracleOptions options)
    : gold_(std::move(gold_matches)),
      ambiguous_(std::move(ambiguous)),
      options_(options) {}

uint64_t OracleLabeler::PairHash(const RecordPair& pair, uint64_t salt) const {
  // SplitMix64-style mix of (left, right, seed, salt); stable per pair.
  uint64_t x = (static_cast<uint64_t>(pair.left) << 32) | pair.right;
  x ^= options_.seed + 0x9E3779B97F4A7C15ULL + (salt << 1);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Label OracleLabeler::LabelPair(const RecordPair& pair) const {
  if (ambiguous_.Contains(pair)) {
    double u = static_cast<double>(PairHash(pair, 1) >> 11) * 0x1.0p-53;
    if (u < options_.unsure_rate) return Label::kUnsure;
    // Ambiguous pairs guessed instead of marked Unsure split evenly.
    return (PairHash(pair, 2) & 1) ? Label::kYes : Label::kNo;
  }
  Label truth = gold_.Contains(pair) ? Label::kYes : Label::kNo;
  double n = static_cast<double>(PairHash(pair, 3) >> 11) * 0x1.0p-53;
  if (n < options_.noise_rate) {
    return truth == Label::kYes ? Label::kNo : Label::kYes;
  }
  return truth;
}

Label OracleLabeler::CorrectedLabel(const RecordPair& pair) const {
  if (ambiguous_.Contains(pair)) {
    // Even after discussion some pairs stay undecidable (§8 D1: "even they
    // did not know if these were matches").
    double u = static_cast<double>(PairHash(pair, 1) >> 11) * 0x1.0p-53;
    if (u < options_.unsure_rate) return Label::kUnsure;
    return gold_.Contains(pair) ? Label::kYes : Label::kNo;
  }
  return gold_.Contains(pair) ? Label::kYes : Label::kNo;
}

void OracleLabeler::LabelAll(const CandidateSet& pairs, LabeledSet& out) const {
  for (const RecordPair& p : pairs) {
    out.SetLabel(p, LabelPair(p));
  }
}

}  // namespace emx
