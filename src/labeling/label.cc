#include "src/labeling/label.h"

namespace emx {

std::string_view LabelToString(Label label) {
  switch (label) {
    case Label::kNo:
      return "No";
    case Label::kYes:
      return "Yes";
    case Label::kUnsure:
      return "Unsure";
  }
  return "?";
}

void LabeledSet::SetLabel(const RecordPair& pair, Label label) {
  auto [it, inserted] = index_.try_emplace(pair, label);
  if (inserted) {
    items_.push_back({pair, label});
    return;
  }
  it->second = label;
  for (auto& item : items_) {
    if (item.pair == pair) {
      item.label = label;
      break;
    }
  }
}

bool LabeledSet::GetLabel(const RecordPair& pair, Label* label) const {
  auto it = index_.find(pair);
  if (it == index_.end()) return false;
  if (label != nullptr) *label = it->second;
  return true;
}

bool LabeledSet::Contains(const RecordPair& pair) const {
  return index_.count(pair) > 0;
}

LabeledSet LabeledSet::WithoutUnsure() const {
  LabeledSet out;
  for (const auto& item : items_) {
    if (item.label != Label::kUnsure) out.SetLabel(item.pair, item.label);
  }
  return out;
}

CandidateSet LabeledSet::Pairs() const {
  std::vector<RecordPair> pairs;
  pairs.reserve(items_.size());
  for (const auto& item : items_) pairs.push_back(item.pair);
  return CandidateSet(std::move(pairs));
}

void LabeledSet::Merge(const LabeledSet& other) {
  for (const auto& item : other.items()) {
    SetLabel(item.pair, item.label);
  }
}

size_t LabeledSet::Count(Label label) const {
  size_t n = 0;
  for (const auto& item : items_) {
    if (item.label == label) ++n;
  }
  return n;
}

}  // namespace emx
