#ifndef EMX_LABELING_SAMPLER_H_
#define EMX_LABELING_SAMPLER_H_

#include <cstdint>

#include "src/block/candidate_set.h"
#include "src/labeling/label.h"

namespace emx {

// Uniform random sample of up to `n` pairs from `candidates`, excluding
// pairs already present in `already_labeled` — the paper labels in 100-pair
// iterations, never re-sending a labeled pair (§8).
CandidateSet SamplePairs(const CandidateSet& candidates, size_t n,
                         uint64_t seed,
                         const LabeledSet& already_labeled = {});

}  // namespace emx

#endif  // EMX_LABELING_SAMPLER_H_
