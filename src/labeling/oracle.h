#ifndef EMX_LABELING_ORACLE_H_
#define EMX_LABELING_ORACLE_H_

#include <cstdint>

#include "src/block/candidate_set.h"
#include "src/labeling/label.h"

namespace emx {

struct OracleOptions {
  // Probability a decidable pair gets the WRONG label on the first pass
  // (the UMETRICS student's 22 mismatches out of 100, §8, before the
  // cross-check fixed them).
  double noise_rate = 0.0;
  // Probability an ambiguous pair is labeled Unsure rather than guessed.
  double unsure_rate = 0.8;
  uint64_t seed = 42;
};

// Simulates the domain-expert labeler of §8: ground truth plus an explicit
// "ambiguous" set (pairs even experts cannot decide — dirty/generic titles)
// and a seeded noise model. Labels are a pure function of (pair, seed):
// re-asking the oracle for the same pair returns the same label, like
// re-reading a labeled spreadsheet.
class OracleLabeler {
 public:
  OracleLabeler(CandidateSet gold_matches, CandidateSet ambiguous,
                OracleOptions options = {});

  // First-pass label, including noise and Unsure behaviour.
  Label LabelPair(const RecordPair& pair) const;

  // The corrected label after the §8 cross-check/debugging discussion:
  // noise removed, but genuinely ambiguous pairs stay Unsure.
  Label CorrectedLabel(const RecordPair& pair) const;

  // Labels every pair of `pairs` into `out` (first pass).
  void LabelAll(const CandidateSet& pairs, LabeledSet& out) const;

  const CandidateSet& gold() const { return gold_; }

 private:
  uint64_t PairHash(const RecordPair& pair, uint64_t salt) const;

  CandidateSet gold_;
  CandidateSet ambiguous_;
  OracleOptions options_;
};

}  // namespace emx

#endif  // EMX_LABELING_ORACLE_H_
