#include "src/labeling/sampler.h"

#include "src/core/random.h"

namespace emx {

CandidateSet SamplePairs(const CandidateSet& candidates, size_t n,
                         uint64_t seed, const LabeledSet& already_labeled) {
  std::vector<RecordPair> pool;
  pool.reserve(candidates.size());
  for (const RecordPair& p : candidates) {
    if (!already_labeled.Contains(p)) pool.push_back(p);
  }
  RandomEngine rng(seed);
  if (pool.size() <= n) return CandidateSet(std::move(pool));
  std::vector<size_t> picks = rng.SampleWithoutReplacement(pool.size(), n);
  std::vector<RecordPair> out;
  out.reserve(n);
  for (size_t i : picks) out.push_back(pool[i]);
  return CandidateSet(std::move(out));
}

}  // namespace emx
