#ifndef EMX_LABELING_LABEL_DEBUGGER_H_
#define EMX_LABELING_LABEL_DEBUGGER_H_

#include <cstdint>
#include <vector>

#include "src/core/result.h"
#include "src/labeling/label.h"
#include "src/ml/matcher.h"

namespace emx {

// A labeled pair whose given label disagrees with the leave-one-out
// prediction of a matcher trained on all other labeled pairs (§8,
// "Debugging the Labeled Sample").
struct LabelDiscrepancy {
  RecordPair pair;
  Label given;
  Label predicted;  // kYes or kNo
};

struct LabelDebugOptions {
  uint64_t seed = 7;
};

// Runs leave-one-out cross-validation over the Yes/No pairs of `labels`
// (Unsure pairs and pairs in `sure_matches` are removed first, as the
// paper removes "unsure and sure matches" before debugging) and reports
// every disagreement. `features` must align row-wise with
// labels.WithoutUnsure() minus sure matches — callers should instead use
// the convenience overload below, which handles alignment.
Result<std::vector<LabelDiscrepancy>> DebugLabels(
    const std::vector<LabeledPair>& pairs,
    const std::vector<std::vector<double>>& feature_rows,
    const MatcherFactory& factory);

}  // namespace emx

#endif  // EMX_LABELING_LABEL_DEBUGGER_H_
