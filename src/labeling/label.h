#ifndef EMX_LABELING_LABEL_H_
#define EMX_LABELING_LABEL_H_

#include <cstddef>
#include <map>
#include <string_view>
#include <vector>

#include "src/block/candidate_set.h"

namespace emx {

// The labeling trichotomy of §8: even domain experts cannot decide some
// pairs, so "Unsure" is first-class; Unsure pairs are excluded from
// training and evaluation.
enum class Label { kNo = 0, kYes = 1, kUnsure = 2 };

std::string_view LabelToString(Label label);

struct LabeledPair {
  RecordPair pair;
  Label label;
};

// An ordered collection of labeled record pairs with O(log n) lookup and
// the Yes/No/Unsure tallies the paper reports after every labeling round.
class LabeledSet {
 public:
  LabeledSet() = default;

  size_t size() const { return items_.size(); }
  const std::vector<LabeledPair>& items() const { return items_; }

  // Inserts or overwrites the label for `pair` (label updates happen
  // throughout §8's debugging loop).
  void SetLabel(const RecordPair& pair, Label label);

  // True plus the label when `pair` is present.
  bool GetLabel(const RecordPair& pair, Label* label) const;
  bool Contains(const RecordPair& pair) const;

  size_t CountYes() const { return Count(Label::kYes); }
  size_t CountNo() const { return Count(Label::kNo); }
  size_t CountUnsure() const { return Count(Label::kUnsure); }

  // Copy without the Unsure pairs (what training/evaluation consume).
  LabeledSet WithoutUnsure() const;

  // The pairs as a CandidateSet (all labels).
  CandidateSet Pairs() const;

  // Merges `other` into this set; labels in `other` win on conflict.
  void Merge(const LabeledSet& other);

 private:
  size_t Count(Label label) const;

  std::map<RecordPair, Label> index_;
  std::vector<LabeledPair> items_;  // insertion order, one entry per pair
};

}  // namespace emx

#endif  // EMX_LABELING_LABEL_H_
